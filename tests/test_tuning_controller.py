"""Property-based tests for the sans-io tuning controller.

Three families, matching the controller's contract:

* **Determinism** — the controller is clock-free and random-free, so
  the same signal trace must always produce the identical decision
  sequence; that property is also what makes telemetry replay
  (:mod:`repro.tuning.replay`) possible, and the round-trip is tested
  against a live :class:`TransferTuner` event stream.
* **Bounds** — whatever the signals do, every emitted knob stays
  inside its configured [min, max] window, and an allocator ceiling in
  the signals caps the rate even on hold epochs.
* **Convergence** — under monotonically improving clean epochs the
  hill climber only ever seeds/climbs/holds/explores and the rate is
  non-decreasing; trouble epochs never raise the rate.
"""

from __future__ import annotations

import pytest

from repro.tuning import (
    Decision,
    EpochMeter,
    EpochSignals,
    TransferTuner,
    TuningConfig,
    TuningController,
    replay_decisions,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

pytestmark = pytest.mark.tuning


def signal_traces() -> st.SearchStrategy[list[EpochSignals]]:
    """Arbitrary-but-valid epoch signal traces."""
    signal = st.builds(
        EpochSignals,
        duration=st.floats(min_value=0.01, max_value=2.0,
                           allow_nan=False, allow_infinity=False),
        acked_delta=st.integers(min_value=0, max_value=50_000),
        sent_delta=st.integers(min_value=0, max_value=50_000),
        retrans_delta=st.integers(min_value=0, max_value=50_000),
        stall_events=st.integers(min_value=0, max_value=3),
        rtt_sample=st.one_of(
            st.none(),
            st.floats(min_value=1e-4, max_value=2.0,
                      allow_nan=False, allow_infinity=False)),
        rate_ceiling_bps=st.one_of(
            st.none(),
            st.floats(min_value=1e6, max_value=1e9,
                      allow_nan=False, allow_infinity=False)),
    )
    return st.lists(signal, min_size=1, max_size=40)


def configs() -> st.SearchStrategy[TuningConfig]:
    return st.builds(
        TuningConfig,
        mode=st.sampled_from(("hill", "vegas")),
        rate_step=st.floats(min_value=1.01, max_value=2.0),
        backoff=st.floats(min_value=0.1, max_value=0.9),
        hold_patience=st.integers(min_value=1, max_value=5),
        streak_cap=st.integers(min_value=1, max_value=8),
    )


class TestDeterminism:
    @given(config=configs(), trace=signal_traces())
    @settings(max_examples=60, deadline=None)
    def test_same_trace_same_decisions(self, config, trace):
        a = TuningController(config)
        b = TuningController(config)
        for signals in trace:
            assert a.on_epoch(signals) == b.on_epoch(signals)

    @given(trace=signal_traces())
    @settings(max_examples=40, deadline=None)
    def test_replay_round_trip(self, trace):
        """A TransferTuner's emitted events replay to the same decisions."""

        class Recorder:
            enabled = True

            def __init__(self):
                self.events: list[dict] = []

            def emit(self, kind, **fields):
                self.events.append({"kind": kind, **fields})

        recorder = Recorder()
        tuner = TransferTuner(TuningConfig(), set_rate=lambda r: None,
                              telemetry=recorder)
        live: list[Decision] = []
        for signals in trace:
            decision = tuner.controller.on_epoch(signals)
            tuner._apply(decision)
            tuner._publish(signals, decision)
            live.append(decision)
        assert replay_decisions(recorder.events) == live


class TestBounds:
    @given(config=configs(), trace=signal_traces())
    @settings(max_examples=60, deadline=None)
    def test_knobs_stay_in_bounds(self, config, trace):
        controller = TuningController(config)
        for signals in trace:
            decision = controller.on_epoch(signals)
            assert (config.min_rate_bps <= decision.rate_bps
                    <= config.max_rate_bps)
            assert (config.min_ack_frequency <= decision.ack_frequency
                    <= config.max_ack_frequency)
            assert config.min_batch <= decision.batch_size <= config.max_batch

    @given(trace=signal_traces(),
           ceiling=st.floats(min_value=2e6, max_value=1e8))
    @settings(max_examples=40, deadline=None)
    def test_ceiling_caps_every_epoch(self, trace, ceiling):
        """An allocator ceiling binds even on hold/explore epochs."""
        config = TuningConfig()
        controller = TuningController(config, rate_bps=1e9)
        for signals in trace:
            capped = EpochSignals(
                duration=signals.duration,
                acked_delta=signals.acked_delta,
                sent_delta=signals.sent_delta,
                retrans_delta=signals.retrans_delta,
                stall_events=signals.stall_events,
                rtt_sample=signals.rtt_sample,
                rate_ceiling_bps=ceiling,
            )
            decision = controller.on_epoch(capped)
            assert decision.rate_bps <= max(ceiling, config.min_rate_bps)

    def test_f_capped_by_feedback_interval(self):
        """A slow sender must not wait > feedback_interval between ACKs."""
        config = TuningConfig()
        controller = TuningController(config, rate_bps=2e6,
                                      ack_frequency=256)
        decision = controller.on_epoch(EpochSignals(
            duration=0.15, acked_delta=30, sent_delta=30, retrans_delta=0))
        packets_per_interval = (decision.rate_bps / (config.packet_size * 8.0)
                                * config.feedback_interval)
        assert decision.ack_frequency <= max(config.min_ack_frequency,
                                             int(packets_per_interval))


class TestConvergence:
    def test_improving_clean_epochs_never_back_off(self):
        """Monotone goodput growth => seed/climb/hold/explore only,
        with a non-decreasing rate."""
        controller = TuningController(TuningConfig())
        last_rate = 0.0
        for i in range(30):
            decision = controller.on_epoch(EpochSignals(
                duration=0.15,
                acked_delta=1000 + 200 * i,
                sent_delta=1000 + 200 * i,
                retrans_delta=0))
            assert decision.action in ("seed", "climb", "hold", "explore")
            assert decision.rate_bps >= last_rate
            last_rate = decision.rate_bps

    def test_trouble_never_raises_rate(self):
        controller = TuningController(TuningConfig(), rate_bps=8e7)
        rate = 8e7
        for _ in range(10):
            decision = controller.on_epoch(EpochSignals(
                duration=0.15, acked_delta=100, sent_delta=1000,
                retrans_delta=900, stall_events=1))
            assert decision.action == "back_off"
            assert decision.rate_bps <= rate
            rate = decision.rate_bps

    def test_explore_escapes_flat_hold(self):
        """A parked rate with a flat goodput slope climbs anyway after
        hold_patience clean epochs — the hold-deadlock guard."""
        config = TuningConfig(hold_patience=3)
        controller = TuningController(config, rate_bps=1e7)
        actions = []
        for _ in range(8):
            actions.append(controller.on_epoch(EpochSignals(
                duration=0.15, acked_delta=1000, sent_delta=1000,
                retrans_delta=0)).action)
        assert "explore" in actions

    def test_vegas_backs_off_on_queue_growth(self):
        """RTT well above base at the current rate => vegas_down."""
        config = TuningConfig(mode="vegas")
        controller = TuningController(config, rate_bps=8e7)
        first = controller.on_epoch(EpochSignals(
            duration=0.15, acked_delta=1000, sent_delta=1000,
            retrans_delta=0, rtt_sample=0.050))
        decision = controller.on_epoch(EpochSignals(
            duration=0.15, acked_delta=1000, sent_delta=1000,
            retrans_delta=0, rtt_sample=0.080))
        assert decision.action == "vegas_down"
        assert decision.rate_bps < first.rate_bps


class TestSignals:
    @given(acked=st.integers(min_value=0, max_value=10_000),
           sent=st.integers(min_value=0, max_value=10_000),
           retrans=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=80, deadline=None)
    def test_loss_and_waste_well_formed(self, acked, sent, retrans):
        signals = EpochSignals(duration=0.1, acked_delta=acked,
                               sent_delta=sent, retrans_delta=retrans)
        assert 0.0 <= signals.loss <= 1.0
        assert signals.waste >= 0.0
        if sent == 0:
            assert signals.loss == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TuningConfig(mode="bogus")
        with pytest.raises(ValueError):
            TuningConfig(min_rate_bps=2e9, max_rate_bps=1e9)
        with pytest.raises(ValueError):
            TuningConfig(rate_step=0.9)
        with pytest.raises(ValueError):
            TuningConfig(loss_low=0.5, loss_high=0.1)


class TestMeter:
    def test_first_poll_snapshots_then_deltas(self):
        meter = EpochMeter(0.1)
        assert meter.poll(0.0, acked=10, sent=20, retrans=5) is None
        assert meter.poll(0.05, acked=15, sent=30, retrans=8) is None
        signals = meter.poll(0.2, acked=40, sent=70, retrans=12)
        assert signals is not None
        assert signals.acked_delta == 30
        assert signals.sent_delta == 50
        assert signals.retrans_delta == 7
        assert signals.duration == pytest.approx(0.2)

    def test_replay_rejects_stream_without_init(self):
        with pytest.raises(ValueError):
            replay_decisions([{"kind": "tune_epoch", "n": 0}])
