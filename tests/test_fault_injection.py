"""Adversarial fault-injection harness for the three protocols.

Every scenario must end in one of two diagnosable outcomes — a
successful transfer or a clean, attributed failure — never a hang.
The schedules come from :mod:`repro.simnet.faults`; the stall/liveness
hardening under test lives in the core sender/receiver/session.
"""

from __future__ import annotations

import pytest

from repro.analysis.diagnostics import loss_breakdown
from repro.core.config import FobsConfig
from repro.core.session import FobsTransfer, run_fobs_transfer
from repro.rudp.protocol import run_rudp_transfer
from repro.sabul.protocol import run_sabul_transfer
from repro.simnet import (
    FaultSchedule,
    GilbertElliott,
    LinkFlap,
    Tracer,
    ack_channel_blackhole,
    blackhole_window,
    burst_loss,
    chain_link_names,
    fault_stats_total,
    install_faults,
    short_haul,
)

from _support import quick_config


def hardened_config(**overrides) -> FobsConfig:
    """Quick-test FOBS config with fast stall/liveness reactions."""
    defaults = dict(
        ack_frequency=16,
        stall_timeout=0.3,
        stall_abort_after=10.0,
        receiver_idle_timeout=20.0,
        ack_refresh_interval=0.3,
    )
    defaults.update(overrides)
    return FobsConfig(**defaults)


# ---------------------------------------------------------------------------
# Schedule values: validation, composition, serialization
# ---------------------------------------------------------------------------
class TestFaultSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(blackholes=((2.0, 1.0),))
        with pytest.raises(ValueError):
            FaultSchedule(match_proto="icmp")
        with pytest.raises(ValueError):
            FaultSchedule(reorder_rate=0.1, reorder_delay=-1.0)

    def test_dict_round_trip(self):
        sched = FaultSchedule(
            blackholes=((0.5, 2.5), (4.0, 4.5)),
            flap=LinkFlap(period=2.0, down_time=0.25, start=1.0),
            burst=GilbertElliott(p_good_bad=0.01, p_bad_good=0.2),
            loss_rate=0.01,
            duplicate_rate=0.02,
            corrupt_rate=0.03,
            reorder_rate=0.04,
            reorder_delay=0.05,
            match_proto="udp",
            match_ports=(7002,),
        )
        assert FaultSchedule.from_dict(sched.to_dict()) == sched
        # Defaults are omitted from the dict form (a scenario is a
        # minimal, human-readable value).
        assert FaultSchedule().to_dict() == {}
        assert FaultSchedule.from_dict({}) == FaultSchedule()

    def test_blackhole_windows(self):
        sched = FaultSchedule(blackholes=((1.0, 2.0),))
        assert not sched.blackholed_at(0.5)
        assert sched.blackholed_at(1.0)
        assert sched.blackholed_at(1.999)
        assert not sched.blackholed_at(2.0)

    def test_link_flap_periodic(self):
        flap = LinkFlap(period=1.0, down_time=0.25)
        assert flap.down_at(0.1)
        assert not flap.down_at(0.5)
        assert flap.down_at(3.2)

    def test_install_rejects_unknown_link(self, short_net):
        with pytest.raises(KeyError):
            install_faults(short_net, FaultSchedule(loss_rate=0.1),
                           links=["nope->nowhere"])

    def test_chain_link_names_directions(self, short_net):
        fwd = chain_link_names(short_net, "forward")
        rev = chain_link_names(short_net, "reverse")
        both = chain_link_names(short_net, "both")
        assert set(both) == set(fwd) | set(rev)
        assert all(name in short_net.links for name in both)


# ---------------------------------------------------------------------------
# FOBS under adversarial schedules
# ---------------------------------------------------------------------------
class TestFobsUnderFaults:
    def test_blackhole_window_recovers(self):
        """The acceptance scenario: a 2 s mid-transfer blackhole.

        The transfer must complete, the stall detector must have fired,
        and recovery must be visible in the counters.
        """
        net = short_haul(seed=7)
        injectors = install_faults(
            net, blackhole_window(0.05, 2.05), direction="both")
        cfg = hardened_config(stall_timeout=0.5, stall_abort_after=30.0)
        stats = FobsTransfer(net, 2_000_000, cfg).run(time_limit=120.0)
        assert stats.ok
        assert stats.stall_events > 0
        assert stats.stall_probes > 0
        assert stats.stall_recoveries > 0
        fs = fault_stats_total(injectors)
        assert fs.dropped_blackhole > 0

    def test_blackhole_replay_identical(self):
        """Same schedule + same seed => byte-identical packet traces."""
        def traced(seed: int) -> list[tuple[float, str, str]]:
            net = short_haul(seed=seed)
            install_faults(
                net,
                FaultSchedule(blackholes=((0.02, 0.3),), loss_rate=0.02,
                              duplicate_rate=0.02, corrupt_rate=0.01),
                direction="both")
            tracer = Tracer(enabled=True)
            transfer = FobsTransfer(net, 300_000,
                                    hardened_config(), tracer=tracer)
            transfer.run(time_limit=120.0)
            return [(r.time, r.kind, r.detail) for r in tracer.records]

        first, second, other = traced(11), traced(11), traced(12)
        assert len(first) > 100
        assert first == second
        assert first != other

    def test_ack_loss_only_completes_with_waste(self):
        """UDP ACK channel dead, TCP completion alive: FOBS finishes
        (the completion signal closes the loop) but wastes packets."""
        net = short_haul(seed=1)
        install_faults(net, ack_channel_blackhole(), direction="reverse")
        stats = run_fobs_transfer(net, 500_000, quick_config(),
                                  time_limit=120.0)
        assert stats.ok
        assert stats.wasted_fraction > 0.2
        assert stats.acks_processed == 0

    def test_duplication_completes(self):
        net = short_haul(seed=3)
        install_faults(net, FaultSchedule(duplicate_rate=0.2),
                       direction="forward")
        stats = run_fobs_transfer(net, 500_000, quick_config(),
                                  time_limit=120.0)
        assert stats.ok
        assert stats.duplicates_received > 0

    def test_corruption_detected_and_survived(self):
        net = short_haul(seed=2)
        injectors = install_faults(net, FaultSchedule(corrupt_rate=0.05),
                                   direction="forward")
        stats = run_fobs_transfer(net, 500_000, quick_config(),
                                  time_limit=120.0)
        assert stats.ok
        assert stats.corrupt_data_dropped > 0
        # Not every corrupted frame survives to the receiver (queues and
        # socket buffers can still drop it), so injected >= rejected.
        assert fault_stats_total(injectors).corrupted >= stats.corrupt_data_dropped

    def test_corruption_without_checksum_is_silent(self):
        """The negotiated fallback accepts damaged frames silently."""
        net = short_haul(seed=2)
        install_faults(net, FaultSchedule(corrupt_rate=0.05),
                       direction="forward")
        stats = run_fobs_transfer(net, 500_000,
                                  quick_config(checksum=False),
                                  time_limit=120.0)
        assert stats.completed
        assert stats.corrupt_data_dropped == 0

    def test_burst_loss_completes(self):
        net = short_haul(seed=5)
        install_faults(net, burst_loss(mean_burst_frames=10.0,
                                       mean_gap_frames=300.0),
                       direction="forward")
        stats = run_fobs_transfer(net, 500_000, hardened_config(),
                                  time_limit=120.0)
        assert stats.ok
        assert stats.retransmissions > 0

    def test_reordering_completes(self):
        net = short_haul(seed=4)
        install_faults(net, FaultSchedule(reorder_rate=0.2,
                                          reorder_delay=0.02),
                       direction="forward")
        stats = run_fobs_transfer(net, 500_000, quick_config(),
                                  time_limit=120.0)
        assert stats.ok

    def test_link_flap_completes(self):
        net = short_haul(seed=6)
        install_faults(net,
                       FaultSchedule(flap=LinkFlap(period=0.4,
                                                   down_time=0.05)),
                       direction="forward")
        stats = run_fobs_transfer(net, 500_000, hardened_config(),
                                  time_limit=120.0)
        assert stats.ok


# ---------------------------------------------------------------------------
# RBUDP and SABUL: complete or fail cleanly, never hang
# ---------------------------------------------------------------------------
SCENARIOS = {
    "blackhole_window": FaultSchedule(blackholes=((0.05, 1.0),)),
    "ack_loss_only": ack_channel_blackhole(),
    "duplication": FaultSchedule(duplicate_rate=0.2),
    "corruption": FaultSchedule(corrupt_rate=0.05),
}


class TestRudpUnderFaults:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_diagnosable_outcome(self, name):
        net = short_haul(seed=5)
        direction = "reverse" if name == "ack_loss_only" else "both"
        install_faults(net, SCENARIOS[name], direction=direction)
        stats = run_rudp_transfer(net, 500_000, time_limit=60.0)
        # Either outcome is acceptable; it must be diagnosable.
        assert stats.completed != stats.timed_out
        if name == "corruption":
            assert stats.completed
            assert stats.packets_corrupt > 0


class TestSabulUnderFaults:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_diagnosable_outcome(self, name):
        net = short_haul(seed=6)
        direction = "reverse" if name == "ack_loss_only" else "both"
        install_faults(net, SCENARIOS[name], direction=direction)
        stats = run_sabul_transfer(net, 500_000, time_limit=60.0)
        assert stats.completed != stats.timed_out
        if name == "corruption":
            assert stats.completed
            assert stats.packets_corrupt > 0

    def test_dead_path_times_out_cleanly(self):
        net = short_haul(seed=6)
        install_faults(net, blackhole_window(0.0, 1e9), direction="both")
        stats = run_sabul_transfer(net, 200_000, time_limit=5.0)
        assert not stats.completed
        assert stats.timed_out


# ---------------------------------------------------------------------------
# Diagnostics integration
# ---------------------------------------------------------------------------
class TestDiagnostics:
    def test_loss_breakdown_attributes_injected_drops(self):
        net = short_haul(seed=9)
        injectors = install_faults(
            net, FaultSchedule(loss_rate=0.05, duplicate_rate=0.02,
                               corrupt_rate=0.02),
            direction="forward")
        stats = run_fobs_transfer(net, 500_000, quick_config(),
                                  time_limit=120.0)
        assert stats.ok
        breakdown = loss_breakdown(net, stats.receiver_socket_drops)
        fs = fault_stats_total(injectors)
        assert breakdown.injected_drops == fs.dropped > 0
        assert breakdown.corrupted == fs.corrupted > 0
        assert breakdown.duplicated == fs.duplicated > 0
        assert "injected" in breakdown.render()

    def test_breakdown_silent_without_faults(self):
        net = short_haul(seed=9)
        stats = run_fobs_transfer(net, 200_000, quick_config(),
                                  time_limit=120.0)
        assert stats.ok
        breakdown = loss_breakdown(net, stats.receiver_socket_drops)
        assert breakdown.injected_drops == 0
        assert "injected" not in breakdown.render()


# ---------------------------------------------------------------------------
# Injector mechanics
# ---------------------------------------------------------------------------
class TestInjectorMechanics:
    def test_injectors_compose_on_one_link(self):
        net = short_haul(seed=8)
        first = install_faults(net, FaultSchedule(loss_rate=0.05),
                               direction="forward", label="a")
        second = install_faults(net, FaultSchedule(duplicate_rate=0.05),
                                direction="forward", label="b")
        name = chain_link_names(net, "forward")[0]
        assert len(net.links[name].faults) == 2
        stats = run_fobs_transfer(net, 300_000, quick_config(),
                                  time_limit=120.0)
        assert stats.ok
        assert fault_stats_total(first).dropped_random > 0
        assert fault_stats_total(second).duplicated > 0

    def test_noop_schedule_is_transparent(self):
        """Installing an all-defaults schedule must not change results."""
        def run(with_faults: bool):
            net = short_haul(seed=10)
            if with_faults:
                install_faults(net, FaultSchedule(), direction="both")
            tracer = Tracer(enabled=True)
            transfer = FobsTransfer(net, 300_000, quick_config(),
                                    tracer=tracer)
            stats = transfer.run(time_limit=120.0)
            return stats, [(r.time, r.kind, r.detail) for r in tracer.records]

        plain_stats, plain_trace = run(False)
        faulty_stats, faulty_trace = run(True)
        assert plain_stats.ok and faulty_stats.ok
        assert plain_trace == faulty_trace
