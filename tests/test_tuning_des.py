"""Autotuning wired through the backends: DES fairness, pacing clamps.

The DES test is the satellite regression from the issue: two tuned
senders sharing the contended bottleneck must converge to a fair split
(Jain >= 0.9) — and do so with far less waste than the greedy blast.
The pump-hint test pins the stale-sleep fix: a pacing wait hint is
always short enough that a mid-wait allocator raise takes effect
promptly instead of after a sleep computed against the old rate.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

import pytest

from repro.core.config import FobsConfig
from repro.server.sim import SimTransferSpec, run_sim_server
from repro.simnet.topology import contended_path
from repro.tuning import TuningConfig

pytestmark = pytest.mark.tuning


def test_two_tuned_senders_share_fairly():
    net = contended_path(seed=3)
    specs = [SimTransferSpec(nbytes=8_000_000, arrival=0.05 * i,
                             client=f"c{i}") for i in range(2)]
    result = run_sim_server(net, specs, config=FobsConfig(ack_frequency=32),
                            max_active=4, time_limit=120,
                            tuning=TuningConfig())
    stats = [s for s in result.stats if s is not None]
    assert len(stats) == 2 and all(s.ok for s in stats)
    assert result.jain_fairness() >= 0.9
    sent = sum(s.packets_sent for s in stats)
    required = sum(s.npackets for s in stats)
    # Greedy on this path wastes ~1.4x the object; tuned senders stay
    # well under half that.
    assert (sent - required) / required < 0.5


def test_tuned_des_run_is_deterministic():
    def run():
        net = contended_path(seed=7)
        specs = [SimTransferSpec(nbytes=4_000_000, arrival=0.05 * i,
                                 client=f"c{i}") for i in range(2)]
        result = run_sim_server(net, specs,
                                config=FobsConfig(ack_frequency=32),
                                max_active=4, time_limit=120,
                                tuning=TuningConfig())
        return [(s.packets_sent, s.retransmissions, s.duration)
                for s in result.stats if s is not None]

    assert run() == run()


def test_pump_hint_clamped_for_prompt_rate_raises():
    """daemon._pump_entry never asks to sleep past the clamp.

    At 1 kb/s a 1300-byte datagram's token wait is ~10 s; if the event
    loop honored it, an allocator raise mid-wait would sit unused for
    that long.  The returned hint must be clamped (<= 0.02 s) so the
    pump re-checks the bucket — which re-reads the *current* rate —
    promptly.
    """
    from repro.core.rate import TokenBucket
    from repro.server.daemon import ObjectServer, _SendEntry

    sender = SimpleNamespace(complete=False)
    entry = _SendEntry(
        key=1, session=None, sender=sender, data=b"", config=None,
        conn=SimpleNamespace(addr=("127.0.0.1", 1)), name="x")
    entry.data_addr = ("127.0.0.1", 9)
    now = time.monotonic()
    entry.pacer = TokenBucket()
    entry.pacer.set_rate(1000.0, now)
    while entry.pacer.take(1300, now):  # drain the burst allowance
        pass
    entry.pending.append(b"x" * 1300)
    assert entry.pacer.wait_hint(1300, now) > 0.02  # the hazard is real
    hint = ObjectServer._pump_entry(SimpleNamespace(), entry, now)
    assert hint <= 0.02


@pytest.mark.loopback
def test_loopback_completion_is_prompt():
    """Completion-signal regression: the receiver must send DONE when
    the object lands, not leave the sender to synthesize completion
    from a 5 s ACK stall."""
    from repro.runtime.transfer import run_loopback_transfer

    result = run_loopback_transfer(nbytes=200_000,
                                   config=FobsConfig(ack_frequency=16))
    assert result.completed and result.checksum_ok
    assert result.duration < 2.0


@pytest.mark.loopback
def test_tuned_loopback_transfer_replays():
    """End-to-end on real sockets: a tuned transfer completes and its
    recorded decision stream replays exactly."""
    import os
    import tempfile

    from repro.runtime.transfer import run_loopback_transfer
    from repro.telemetry import EventBus, JsonlSink, read_events
    from repro.tuning import replay_decisions

    with tempfile.TemporaryDirectory() as tmp:
        log = os.path.join(tmp, "tel.jsonl")
        bus = EventBus(sinks=[JsonlSink(log, producer="test")])
        try:
            result = run_loopback_transfer(
                nbytes=1_500_000, config=FobsConfig(ack_frequency=16),
                tuning=TuningConfig(epoch_interval=0.05), telemetry=bus)
        finally:
            bus.close()
        assert result.completed and result.checksum_ok
        events = [dict(kind=e.kind, **e.fields) for e in read_events(log)
                  if e.src == "tuner"]
        decisions = replay_decisions(events)
        assert decisions  # at least one epoch elapsed and replayed
