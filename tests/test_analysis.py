"""Tests for metrics, report rendering and experiment runners."""

import pytest

from repro.analysis.metrics import mean, percent_of_bandwidth, stddev, wasted_resources
from repro.analysis.report import render_series, render_table
from repro.analysis import experiments


class TestMetrics:
    def test_percent_of_bandwidth(self):
        assert percent_of_bandwidth(50e6, 100e6) == 50.0

    def test_percent_validation(self):
        with pytest.raises(ValueError):
            percent_of_bandwidth(1.0, 0.0)
        with pytest.raises(ValueError):
            percent_of_bandwidth(-1.0, 1.0)

    def test_wasted_resources_matches_paper_definition(self):
        # "total sent minus required, divided by required"
        assert wasted_resources(103, 100) == pytest.approx(0.03)

    def test_wasted_validation(self):
        with pytest.raises(ValueError):
            wasted_resources(99, 100)
        with pytest.raises(ValueError):
            wasted_resources(1, 0)

    def test_mean_and_stddev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stddev([2.0, 4.0]) == pytest.approx(1.4142, rel=1e-3)
        assert stddev([5.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            stddev([])


class TestReport:
    def test_table_alignment(self):
        out = render_table(("a", "bb"), [(1, 22), (333, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].index("|") == lines[2].index("|")

    def test_table_title(self):
        out = render_table(("x",), [(1,)], title="T")
        assert out.startswith("T\n")

    def test_series_bars_scale(self):
        out = render_series("S", "f", "pct", [(1, 50.0), (2, 100.0)], width=10,
                            ymax=100.0)
        lines = out.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_series_empty(self):
        assert "no data" in render_series("S", "x", "y", [])


class TestExperimentRunners:
    """Tiny-size smoke runs of every registered experiment."""

    def test_figure1_structure(self):
        res = experiments.figure1(nbytes=300_000, frequencies=(8, 64))
        assert res.name == "Figure 1"
        assert len(res.rows) == 2
        assert len(res.series) == 2
        assert "90%" in res.notes

    def test_figure2_structure(self):
        res = experiments.figure2(nbytes=300_000, frequencies=(8, 64))
        assert len(res.rows) == 2
        assert "waste" in res.headers[1]

    def test_figure3_structure(self):
        res = experiments.figure3(nbytes=300_000, packet_sizes=(1024, 8192))
        assert [row[0] for row in res.rows] == ["1K", "8K"]

    def test_table1_structure(self):
        res = experiments.table1(nbytes=2_000_000, seeds=(0,))
        assert len(res.rows) == 3
        assert res.rows[0][2] == "86%"  # paper reference column

    def test_table2_structure(self):
        res = experiments.table2(nbytes=2_000_000, probe_bytes=500_000,
                                 candidates=(1, 4))
        assert len(res.rows) == 3
        assert "PSockets" in res.headers[1]

    def test_ablation_batch(self):
        res = experiments.ablation_batch_size(nbytes=300_000, batch_sizes=(1, 2))
        assert len(res.rows) == 3  # 2 fixed + adaptive

    def test_shootout(self):
        res = experiments.baseline_shootout(nbytes=1_000_000)
        assert len(res.rows) == 2
        assert len(res.headers) == 6

    def test_sweep_rejects_unknown_haul(self):
        with pytest.raises(ValueError):
            experiments.ack_frequency_sweep("medium")

    def test_render_includes_table_and_series(self):
        res = experiments.figure1(nbytes=300_000, frequencies=(64,))
        out = res.render()
        assert "Figure 1" in out
        assert "#" in out  # series bars

    def test_registry_complete(self):
        assert set(experiments.EXPERIMENTS) == {
            "figure1", "figure2", "figure3", "table1", "table2",
            "ablation_batch", "ablation_selection", "ablation_congestion",
            "ablation_autotune", "satellite", "fairness", "shootout",
        }


class TestCli:
    def test_list(self, capsys):
        from repro.analysis.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "table2" in out

    def test_run_small_experiment(self, capsys):
        from repro.analysis.cli import main
        assert main(["run", "figure1", "--nbytes", "200000", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_run_rejects_unknown(self):
        from repro.analysis.cli import main
        with pytest.raises(SystemExit):
            main(["run", "bogus"])


    def test_run_with_csv_export(self, capsys, tmp_path):
        from repro.analysis.cli import main
        out_csv = tmp_path / "rows.csv"
        assert main(["run", "figure3", "--nbytes", "200000", "--quick",
                     "--csv", str(out_csv)]) == 0
        content = out_csv.read_text().splitlines()
        assert content[0].startswith("packet size")
        assert len(content) >= 3
