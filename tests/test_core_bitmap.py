"""Tests for the packet bitmap, including property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.bitmap import PacketBitmap


class TestMark:
    def test_mark_new_returns_true(self):
        bm = PacketBitmap(10)
        assert bm.mark(3)
        assert bm.count == 1

    def test_mark_duplicate_returns_false(self):
        bm = PacketBitmap(10)
        bm.mark(3)
        assert not bm.mark(3)
        assert bm.count == 1

    def test_out_of_range_rejected(self):
        bm = PacketBitmap(10)
        with pytest.raises(IndexError):
            bm.mark(10)
        with pytest.raises(IndexError):
            bm.mark(-1)

    def test_complete(self):
        bm = PacketBitmap(3)
        for i in range(3):
            bm.mark(i)
        assert bm.is_complete
        assert bm.missing == 0

    def test_zero_packets_rejected(self):
        with pytest.raises(ValueError):
            PacketBitmap(0)


class TestMerge:
    def test_merge_adds_new_bits(self):
        bm = PacketBitmap(10)
        bm.mark(0)
        other = np.zeros(10, dtype=np.bool_)
        other[[0, 5, 7]] = True
        assert bm.merge(other) == 2
        assert bm.count == 3

    def test_merge_never_clears(self):
        bm = PacketBitmap(10)
        bm.mark(4)
        assert bm.merge(np.zeros(10, dtype=np.bool_)) == 0
        assert bm.array[4]

    def test_shape_mismatch_rejected(self):
        bm = PacketBitmap(10)
        with pytest.raises(ValueError):
            bm.merge(np.zeros(5, dtype=np.bool_))


class TestScan:
    def test_next_missing_from_start(self):
        bm = PacketBitmap(10)
        bm.mark(0)
        bm.mark(1)
        assert bm.next_missing(0) == 2

    def test_next_missing_wraps(self):
        bm = PacketBitmap(5)
        for i in (2, 3, 4):
            bm.mark(i)
        assert bm.next_missing(2) == 0

    def test_next_missing_none_when_complete(self):
        bm = PacketBitmap(3)
        for i in range(3):
            bm.mark(i)
        assert bm.next_missing(0) is None

    def test_next_missing_out_of_range_start_wraps(self):
        bm = PacketBitmap(5)
        assert bm.next_missing(7) == 2

    def test_missing_indices(self):
        bm = PacketBitmap(5)
        bm.mark(1)
        bm.mark(3)
        assert bm.missing_indices().tolist() == [0, 2, 4]

    def test_iter_missing(self):
        bm = PacketBitmap(4)
        bm.mark(0)
        assert list(bm.iter_missing()) == [1, 2, 3]


class TestSnapshotAndWire:
    def test_snapshot_is_immutable_copy(self):
        bm = PacketBitmap(5)
        bm.mark(0)
        snap = bm.snapshot()
        bm.mark(1)
        assert snap[0] and not snap[1]
        with pytest.raises(ValueError):
            snap[2] = True

    def test_array_view_read_only(self):
        bm = PacketBitmap(5)
        with pytest.raises(ValueError):
            bm.array[0] = True

    def test_bytes_roundtrip(self):
        bm = PacketBitmap(13)
        for i in (0, 5, 12):
            bm.mark(i)
        restored = PacketBitmap.from_bytes(bm.to_bytes(), 13)
        assert np.array_equal(restored.array, bm.array)
        assert restored.count == 3

    def test_packed_size(self):
        assert len(PacketBitmap(13).to_bytes()) == 2
        assert len(PacketBitmap(16).to_bytes()) == 2
        assert len(PacketBitmap(17).to_bytes()) == 3


@given(
    npackets=st.integers(min_value=1, max_value=300),
    data=st.data(),
)
def test_property_count_matches_unique_marks(npackets, data):
    """count == number of distinct marked sequence numbers, always."""
    bm = PacketBitmap(npackets)
    seqs = data.draw(st.lists(st.integers(0, npackets - 1), max_size=200))
    for seq in seqs:
        bm.mark(seq)
    assert bm.count == len(set(seqs))
    assert bm.missing == npackets - len(set(seqs))
    assert bm.is_complete == (len(set(seqs)) == npackets)


@given(npackets=st.integers(min_value=1, max_value=200), data=st.data())
def test_property_bytes_roundtrip(npackets, data):
    """to_bytes/from_bytes is the identity on bitmap state."""
    bm = PacketBitmap(npackets)
    for seq in data.draw(st.lists(st.integers(0, npackets - 1), max_size=100)):
        bm.mark(seq)
    restored = PacketBitmap.from_bytes(bm.to_bytes(), npackets)
    assert np.array_equal(restored.array, bm.array)


@given(npackets=st.integers(min_value=2, max_value=100), data=st.data())
def test_property_next_missing_is_first_false_circularly(npackets, data):
    """next_missing(start) returns the circularly-first unmarked seq."""
    bm = PacketBitmap(npackets)
    marked = data.draw(st.sets(st.integers(0, npackets - 1),
                               max_size=npackets - 1))
    for seq in marked:
        bm.mark(seq)
    start = data.draw(st.integers(0, npackets - 1))
    result = bm.next_missing(start)
    expected = next(
        (start + off) % npackets
        for off in range(npackets)
        if (start + off) % npackets not in marked
    )
    assert result == expected
