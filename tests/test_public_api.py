"""Public-API stability tests: the names README/docs promise exist."""

import importlib

import pytest


class TestTopLevelExports:
    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_surface(self):
        import repro

        for name in ("FobsConfig", "run_fobs_transfer", "short_haul",
                     "long_haul", "gigabit_path", "contended_path",
                     "TcpOptions", "run_bulk_transfer",
                     "run_striped_transfer", "probe_optimal_sockets",
                     "run_rudp_transfer", "run_sabul_transfer"):
            assert name in repro.__all__

    def test_observation_surface(self):
        """Tracer/Monitor are promoted to the top level (PR 3)."""
        import repro

        assert "Tracer" in repro.__all__
        assert "Monitor" in repro.__all__
        assert repro.Tracer is not None and repro.Monitor is not None

    def test_server_surface(self):
        import repro

        for name in ("ObjectServer", "serve_root", "fetch_file",
                     "run_sim_server", "SimTransferSpec"):
            assert name in repro.__all__
            assert getattr(repro, name, None) is not None, name

    def test_telemetry_surface(self):
        """Event bus + sinks + schema constants are top-level (PR 5)."""
        import repro

        for name in ("Event", "EventBus", "TelemetryChannel",
                     "RingBufferSink", "JsonlSink", "SnapshotSink",
                     "MetricsRegistry", "read_events",
                     "EVENT_KINDS", "EVENT_SCHEMA_VERSION"):
            assert name in repro.__all__
            assert getattr(repro, name, None) is not None, name

    def test_event_kind_constants(self):
        """Every EV_* schema constant is exported and enumerated."""
        import repro

        kinds = [n for n in repro.__all__ if n.startswith("EV_")]
        assert len(kinds) == len(repro.EVENT_KINDS)
        for name in kinds:
            value = getattr(repro, name)
            assert isinstance(value, str)
            assert value in repro.EVENT_KINDS, name

    def test_dataset_surface(self):
        """Dataset-transfer API is promoted to the top level (PR 7)."""
        import repro

        for name in ("DatasetManifest", "FileEntry", "DatasetJournal",
                     "DatasetSyncResult", "PackingConfig",
                     "SchedulerConfig", "TransferPlan", "scan_tree",
                     "plan_objects", "schedule", "sync_tree"):
            assert name in repro.__all__
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
        assert repro.__version__ == "1.2.0"


@pytest.mark.parametrize("module", [
    "repro.core", "repro.simnet", "repro.tcp", "repro.psockets",
    "repro.rudp", "repro.sabul", "repro.runtime", "repro.analysis",
    "repro.server", "repro.telemetry", "repro.dataset",
])
class TestSubpackages:
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__")
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, f"{module}.{name}"

    def test_module_docstring(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40


class TestConsoleScripts:
    def test_entry_points_registered(self):
        import tomllib

        with open("pyproject.toml", "rb") as fh:
            meta = tomllib.load(fh)
        scripts = meta["project"]["scripts"]
        assert scripts["fobs-repro"] == "repro.analysis.cli:main"
        assert scripts["fobs-xfer"] == "repro.runtime.cli:main"
        assert scripts["repro"] == "repro.server.cli:main"

    def test_cli_mains_importable(self):
        from repro.analysis.cli import main as repro_main
        from repro.runtime.cli import main as xfer_main
        from repro.server.cli import main as server_main

        assert callable(repro_main) and callable(xfer_main)
        assert callable(server_main)
