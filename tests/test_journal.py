"""Property-based tests for the receiver write-ahead journal.

The contract under test (ISSUE acceptance): journal write → crash →
replay reconstructs the flushed bitmap *exactly*, and every damage
mode — torn final record, truncated file, corrupted entries — is
detected and dropped, never mis-applied.  A corrupted journal may
lose progress (forcing retransmission) but can never fabricate a
received packet (which would corrupt the resumed object).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.journal import (
    HEADER_BYTES,
    RECORD_BYTES,
    JournalCorrupt,
    JournalHeader,
    ReceiverJournal,
    ReplayResult,
    encode_record,
    replay_journal,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

NPACKETS = 64
TID = 0xDEADBEEF
TOTAL_BYTES = NPACKETS * 1000
PACKET_SIZE = 1000


def seqs() -> st.SearchStrategy[list[int]]:
    """Arrival orders: shuffled, duplicated, partially sequential."""
    return st.lists(st.integers(0, NPACKETS - 1), min_size=0, max_size=200)


def make_journal(tmp_path, **kwargs) -> ReceiverJournal:
    return ReceiverJournal.create(
        str(tmp_path / "j.journal"), TID, TOTAL_BYTES, PACKET_SIZE, **kwargs)


class TestReplayExact:
    @given(before=seqs(), after=seqs(), flush_every=st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_crash_replay_brackets_durability_boundary(
        self, tmp_path_factory, before, after, flush_every
    ):
        """Replay recovers everything flushed, fabricates nothing.

        ``before`` arrives and is explicitly flushed (durable);
        ``after`` arrives and the process crashes.  The recovered
        bitmap must contain every ``before`` packet and no packet that
        was never marked — the unflushed tail may go either way, which
        is exactly the contract (lost progress is retransmitted; a
        fabricated packet would corrupt the object).
        """
        tmp = tmp_path_factory.mktemp("journal")
        journal = ReceiverJournal.create(
            str(tmp / "j.journal"), TID, TOTAL_BYTES, PACKET_SIZE,
            flush_every=flush_every)
        for seq in before:
            if journal.bitmap.mark(seq):
                journal.record(seq)
        journal.flush()
        durable = journal.bitmap.array.copy()
        for seq in after:
            if journal.bitmap.mark(seq):
                journal.record(seq)
        everything = journal.bitmap.array.copy()
        journal.simulate_crash()
        replay = replay_journal(journal.path)
        assert replay.records_dropped == 0
        assert replay.torn_tail_bytes == 0
        recovered = replay.bitmap.array
        assert recovered[durable].all(), "flushed progress lost"
        assert not (recovered & ~everything).any(), "fabricated packets"

    @given(arrivals=seqs())
    @settings(max_examples=40, deadline=None)
    def test_clean_close_replays_everything(self, tmp_path_factory, arrivals):
        tmp = tmp_path_factory.mktemp("journal")
        journal = ReceiverJournal.create(
            str(tmp / "j.journal"), TID, TOTAL_BYTES, PACKET_SIZE)
        for seq in arrivals:
            if not journal.bitmap.array[seq]:
                journal.record(seq)
        expected = journal.bitmap.array.copy()
        journal.close()
        replay = replay_journal(str(tmp / "j.journal"))
        assert np.array_equal(replay.bitmap.array, expected)
        assert replay.records_dropped == 0

    @given(arrivals=seqs(), compact_threshold=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_compaction_preserves_bitmap(
        self, tmp_path_factory, arrivals, compact_threshold
    ):
        """Compaction rewrites the file but never the recovered state."""
        tmp = tmp_path_factory.mktemp("journal")
        journal = ReceiverJournal.create(
            str(tmp / "j.journal"), TID, TOTAL_BYTES, PACKET_SIZE,
            flush_every=1, compact_threshold=compact_threshold)
        for seq in arrivals:
            if not journal.bitmap.array[seq]:
                journal.record(seq)
        expected = journal.bitmap.array.copy()
        journal.compact()
        journal.close()
        replay = replay_journal(str(tmp / "j.journal"))
        assert np.array_equal(replay.bitmap.array, expected)
        # O(bitmap): a compacted file holds at most one record per run.
        runs = int(np.count_nonzero(np.diff(
            np.concatenate(([False], expected)).astype(np.int8)) == 1))
        size = os.path.getsize(str(tmp / "j.journal"))
        assert size <= HEADER_BYTES + runs * RECORD_BYTES


class TestDamageModes:
    def _journal_bytes(self, tmp_path, ranges) -> bytes:
        path = str(tmp_path / "j.journal")
        journal = ReceiverJournal.create(path, TID, TOTAL_BYTES, PACKET_SIZE,
                                         flush_every=1)
        for start, count in ranges:
            journal.record_range(start, count)
        journal.close()
        with open(path, "rb") as fh:
            return fh.read()

    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, NPACKETS - 1), st.integers(1, 8)).map(
                lambda rc: (rc[0], min(rc[1], NPACKETS - rc[0]))),
            min_size=1, max_size=20),
        torn=st.integers(1, RECORD_BYTES - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_torn_final_record_discarded(self, tmp_path_factory, ranges, torn):
        """A crash mid-append never desyncs or fabricates packets."""
        tmp = tmp_path_factory.mktemp("journal")
        blob = self._journal_bytes(tmp, ranges)
        path = str(tmp / "torn.journal")
        # Simulate the torn write: all complete records plus a fragment
        # of one more.
        with open(path, "wb") as fh:
            fh.write(blob + encode_record(3, 2, TID)[:torn])
        replay = replay_journal(path)
        assert replay.torn_tail_bytes == torn
        assert replay.records_dropped == 0
        full = replay_journal(str(tmp / "j.journal"))
        assert np.array_equal(replay.bitmap.array, full.bitmap.array)

    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, NPACKETS - 1), st.integers(1, 8)).map(
                lambda rc: (rc[0], min(rc[1], NPACKETS - rc[0]))),
            min_size=1, max_size=20),
        cut=st.integers(0, HEADER_BYTES - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_truncated_header_raises(self, tmp_path_factory, ranges, cut):
        tmp = tmp_path_factory.mktemp("journal")
        blob = self._journal_bytes(tmp, ranges)
        path = str(tmp / "cut.journal")
        with open(path, "wb") as fh:
            fh.write(blob[:cut])
        with pytest.raises(JournalCorrupt):
            replay_journal(path)

    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, NPACKETS - 1), st.integers(1, 8)).map(
                lambda rc: (rc[0], min(rc[1], NPACKETS - rc[0]))),
            min_size=2, max_size=20),
        victim=st.integers(0, 1 << 30),
        flip_byte=st.integers(0, RECORD_BYTES - 1),
        flip_bits=st.integers(1, 255),
    )
    @settings(max_examples=60, deadline=None)
    def test_corrupted_record_dropped_never_misapplied(
        self, tmp_path_factory, ranges, victim, flip_byte, flip_bits
    ):
        """Flip any byte of any record: detected, dropped, rest intact."""
        tmp = tmp_path_factory.mktemp("journal")
        blob = bytearray(self._journal_bytes(tmp, ranges))
        nrecords = (len(blob) - HEADER_BYTES) // RECORD_BYTES
        victim %= nrecords
        off = HEADER_BYTES + victim * RECORD_BYTES + flip_byte
        blob[off] ^= flip_bits
        path = str(tmp / "corrupt.journal")
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        replay = replay_journal(path)
        assert replay.records_dropped == 1
        assert replay.records_applied == nrecords - 1
        # The corrupted record is dropped, never reinterpreted: the
        # recovered bitmap is a subset of the uncorrupted journal's.
        full = replay_journal(str(tmp / "j.journal"))
        fabricated = replay.bitmap.array & ~full.bitmap.array
        assert not fabricated.any()

    def test_foreign_transfer_rejected(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_range(0, 10)
        journal.close()
        with pytest.raises(JournalCorrupt):
            replay_journal(journal.path,
                           expect=JournalHeader(TID + 1, TOTAL_BYTES,
                                                PACKET_SIZE))
        with pytest.raises(JournalCorrupt):
            replay_journal(journal.path,
                           expect=JournalHeader(TID, TOTAL_BYTES,
                                                PACKET_SIZE * 2))

    def test_cross_transfer_record_never_verifies(self, tmp_path):
        """A record salted with another transfer id fails its CRC."""
        journal = make_journal(tmp_path)
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(encode_record(0, 5, TID + 1))
        replay = replay_journal(journal.path)
        assert replay.records_dropped == 1
        assert replay.bitmap.count == 0


class TestJournalLifecycle:
    def test_open_resumes_or_creates(self, tmp_path):
        path = str(tmp_path / "j.journal")
        journal, replay = ReceiverJournal.open(path, TID, TOTAL_BYTES,
                                               PACKET_SIZE)
        assert replay is None
        journal.record_range(4, 6)
        journal.close()
        journal2, replay2 = ReceiverJournal.open(path, TID, TOTAL_BYTES,
                                                 PACKET_SIZE)
        assert replay2 is not None and replay2.packets_recovered == 6
        assert journal2.bitmap.array[4:10].all()
        journal2.close()

    def test_resume_truncates_torn_tail(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_range(0, 3)
        journal.close()
        with open(journal.path, "ab") as fh:
            fh.write(b"\x01\x02\x03")  # torn fragment
        journal2, replay = ReceiverJournal.resume(journal.path, TID,
                                                  TOTAL_BYTES, PACKET_SIZE)
        assert replay.torn_tail_bytes == 3
        journal2.record_range(10, 2)
        journal2.close()
        final = replay_journal(journal.path)
        assert final.records_dropped == 0
        assert final.bitmap.array[0:3].all() and final.bitmap.array[10:12].all()

    def test_record_validation(self, tmp_path):
        journal = make_journal(tmp_path)
        with pytest.raises(ValueError):
            journal.record_range(0, 0)
        with pytest.raises(ValueError):
            journal.record_range(NPACKETS - 1, 2)
        journal.close()
        with pytest.raises(ValueError):
            journal.record(0)

    def test_replay_result_counters(self, tmp_path):
        journal = make_journal(tmp_path)  # default flush_every coalesces
        for seq in (0, 1, 2, 10, 11, 30):
            journal.record(seq)
        journal.close()
        replay = replay_journal(journal.path)
        assert isinstance(replay, ReplayResult)
        assert replay.packets_recovered == 6
        # Coalescing: three runs, three records.
        assert replay.records_applied == 3
