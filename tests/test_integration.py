"""Cross-protocol integration tests: the paper's qualitative claims.

These run small transfers on the calibrated paper topologies and check
the *relationships* the paper reports — who beats whom, and why — not
the absolute calibrated numbers (those are the benchmarks' job).
"""

import pytest

import repro.simnet as sn
from repro.core import FobsConfig, run_fobs_transfer
from repro.psockets import run_striped_transfer
from repro.rudp import run_rudp_transfer
from repro.sabul import run_sabul_transfer
from repro.tcp import TcpOptions, run_bulk_transfer

NBYTES = 4_000_000

pytestmark = pytest.mark.slow


class TestPaperClaims:
    def test_fobs_matches_tcp_on_clean_short_haul(self):
        """Section 5.1: on the short haul with LWE and no contention,
        TCP's performance was 'approximately the same' as FOBS."""
        # Larger object here: TCP needs to amortize slow start before
        # the comparison is fair (the paper's 40 MB transfers did).
        nbytes = 10_000_000
        fobs = run_fobs_transfer(sn.short_haul(), nbytes)
        opts = TcpOptions(sack=True)
        tcp = run_bulk_transfer(sn.short_haul(), nbytes,
                                sender_options=opts, receiver_options=opts)
        assert fobs.percent_of_bottleneck > 80
        assert tcp.percent_of_bottleneck > 0.75 * fobs.percent_of_bottleneck

    def test_fobs_beats_tcp_on_long_haul(self):
        """The headline: ~1.8x over optimized TCP on the long haul.
        Averaged over seeds because rare-loss Reno is bimodal."""
        opts = TcpOptions(sack=True)
        fobs_vals, tcp_vals = [], []
        for seed in range(3):
            fobs_vals.append(
                run_fobs_transfer(sn.long_haul(seed=seed), NBYTES).percent_of_bottleneck)
            tcp_vals.append(
                run_bulk_transfer(sn.long_haul(seed=seed), NBYTES,
                                  sender_options=opts,
                                  receiver_options=opts).percent_of_bottleneck)
        assert sum(fobs_vals) > 1.2 * sum(tcp_vals)

    def test_lwe_dominates_no_lwe_on_long_haul(self):
        """Table 1's ordering: long haul with LWE >> without."""
        lwe = TcpOptions(window_scaling=True, sack=True)
        no = TcpOptions(window_scaling=False)
        with_lwe = run_bulk_transfer(sn.long_haul(seed=4), NBYTES,
                                     sender_options=lwe, receiver_options=lwe)
        without = run_bulk_transfer(sn.long_haul(seed=4), NBYTES,
                                    sender_options=no, receiver_options=no)
        assert with_lwe.percent_of_bottleneck > 2 * without.percent_of_bottleneck

    def test_fobs_beats_psockets_on_contended_path(self):
        """Table 2's ordering: FOBS > PSockets under contention."""
        fobs = run_fobs_transfer(sn.contended_path(), NBYTES)
        ps = run_striped_transfer(sn.contended_path(seed=1), NBYTES, 20)
        assert fobs.percent_of_bottleneck > ps.percent_of_bottleneck

    def test_fobs_insensitive_to_residual_loss(self):
        """FOBS 'does not assume packet loss is congestion': residual
        loss barely moves its goodput."""
        clean = run_fobs_transfer(sn.long_haul(seed=0, loss_rate=0.0), NBYTES)
        lossy = run_fobs_transfer(sn.long_haul(seed=0), NBYTES)
        assert lossy.percent_of_bottleneck > 0.9 * clean.percent_of_bottleneck

    def test_fobs_beats_sabul_on_lossy_path(self):
        """The FOBS/SABUL contrast: loss-as-congestion costs SABUL."""
        fobs = run_fobs_transfer(sn.contended_path(), NBYTES)
        sabul = run_sabul_transfer(sn.contended_path(), NBYTES)
        assert fobs.percent_of_bottleneck > sabul.percent_of_bottleneck

    def test_rudp_comparable_on_clean_network(self):
        """RBUDP targets loss-free QoS networks — and matches FOBS
        there."""
        fobs = run_fobs_transfer(sn.short_haul(), NBYTES)
        rudp = run_rudp_transfer(sn.short_haul(), NBYTES)
        assert abs(fobs.percent_of_bottleneck - rudp.percent_of_bottleneck) < 15

    def test_packet_size_matters_on_gigabit_path(self):
        """Figure 3's claim: 'the size of the data packet makes a
        tremendous difference in performance'."""
        small = run_fobs_transfer(
            sn.gigabit_path(), NBYTES,
            FobsConfig(packet_size=1024, ack_frequency=128))
        big = run_fobs_transfer(
            sn.gigabit_path(), NBYTES,
            FobsConfig(packet_size=16384, ack_frequency=8,
                       recv_buffer=8 * 16784))
        assert big.percent_of_bottleneck > 3 * small.percent_of_bottleneck


class TestDeterminism:
    def test_full_stack_reproducibility(self):
        """Same seed -> bit-identical outcome across protocol stacks."""
        a = run_fobs_transfer(sn.contended_path(seed=9), 1_000_000)
        b = run_fobs_transfer(sn.contended_path(seed=9), 1_000_000)
        assert a.duration == b.duration
        assert a.packets_sent == b.packets_sent
        assert a.wasted_fraction == b.wasted_fraction

    def test_seeds_change_outcomes_under_loss(self):
        a = run_fobs_transfer(sn.contended_path(seed=1), 1_000_000)
        b = run_fobs_transfer(sn.contended_path(seed=2), 1_000_000)
        assert a.duration != b.duration
