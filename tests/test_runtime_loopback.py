"""Real-socket loopback tests for the sans-IO FOBS core."""

import pytest

from repro.core.config import FobsConfig
from repro.runtime import run_loopback_transfer

pytestmark = pytest.mark.loopback


class TestLoopback:
    def test_clean_transfer_checksums(self):
        res = run_loopback_transfer(500_000)
        assert res.checksum_ok
        assert res.nbytes == 500_000
        assert res.throughput_bps > 0

    def test_lossy_transfer_recovers(self):
        res = run_loopback_transfer(300_000, drop_rate=0.05, seed=1)
        assert res.checksum_ok
        assert res.packets_retransmitted > 0

    def test_heavy_loss_recovers(self):
        res = run_loopback_transfer(100_000, drop_rate=0.3, seed=2)
        assert res.checksum_ok

    def test_odd_object_size(self):
        res = run_loopback_transfer(100_001)
        assert res.checksum_ok

    def test_custom_packet_size(self):
        cfg = FobsConfig(packet_size=4096, ack_frequency=8)
        res = run_loopback_transfer(200_000, config=cfg)
        assert res.checksum_ok

    def test_explicit_data(self):
        data = bytes(range(256)) * 100
        res = run_loopback_transfer(len(data), data=data)
        assert res.checksum_ok

    def test_data_length_validated(self):
        with pytest.raises(ValueError):
            run_loopback_transfer(100, data=b"short")

    def test_waste_reported(self):
        res = run_loopback_transfer(200_000, drop_rate=0.1, seed=3)
        assert res.wasted_fraction > 0.03
