"""Tests for the generator-based process layer."""

import pytest

from repro.simnet.process import Event, Process


class TestProcess:
    def test_sleep_advances_time(self, sim):
        trace = []

        def app(proc):
            trace.append(sim.now)
            yield proc.sleep(1.5)
            trace.append(sim.now)
            yield proc.sleep(0.5)
            trace.append(sim.now)

        Process(sim, app)
        sim.run()
        assert trace == [0.0, 1.5, 2.0]

    def test_return_value_captured(self, sim):
        def app(proc):
            yield proc.sleep(1.0)
            return 42

        p = Process(sim, app)
        sim.run()
        assert p.finished
        assert p.result == 42

    def test_start_delay(self, sim):
        started = []

        def app(proc):
            started.append(sim.now)
            yield proc.sleep(0)

        Process(sim, app, start_delay=3.0)
        sim.run()
        assert started == [3.0]

    def test_bad_yield_raises(self, sim):
        def app(proc):
            yield "nonsense"

        Process(sim, app)
        with pytest.raises(TypeError):
            sim.run()

    def test_two_processes_interleave(self, sim):
        trace = []

        def make(tag, period):
            def app(proc):
                for _ in range(3):
                    yield proc.sleep(period)
                    trace.append((tag, sim.now))
            return app

        Process(sim, make("a", 1.0))
        Process(sim, make("b", 0.4))
        sim.run()
        assert [tag for tag, _ in trace] == ["b", "b", "a", "b", "a", "a"]
        assert [t for _, t in trace] == pytest.approx(
            [0.4, 0.8, 1.0, 1.2, 2.0, 3.0])


class TestEvent:
    def test_wait_resumes_on_fire(self, sim):
        evt = Event(sim)
        got = []

        def waiter(proc):
            payload = yield proc.wait(evt)
            got.append((sim.now, payload))

        def firer(proc):
            yield proc.sleep(2.0)
            evt.fire("hello")

        Process(sim, waiter)
        Process(sim, firer)
        sim.run()
        assert got == [(2.0, "hello")]

    def test_fire_is_idempotent(self, sim):
        evt = Event(sim)
        evt.fire(1)
        evt.fire(2)
        assert evt.payload == 1

    def test_wait_on_fired_event_resumes_immediately(self, sim):
        evt = Event(sim)
        evt.fire("early")
        got = []

        def waiter(proc):
            payload = yield proc.wait(evt)
            got.append(payload)

        Process(sim, waiter)
        sim.run()
        assert got == ["early"]

    def test_done_event_chains_processes(self, sim):
        order = []

        def first(proc):
            yield proc.sleep(1.0)
            order.append("first")
            return "result"

        p1 = Process(sim, first)

        def second(proc):
            value = yield proc.wait(p1.done)
            order.append(f"second saw {value}")

        Process(sim, second)
        sim.run()
        assert order == ["first", "second saw result"]

    def test_broadcast_wakes_all_waiters(self, sim):
        evt = Event(sim)
        woken = []

        def make(tag):
            def app(proc):
                yield proc.wait(evt)
                woken.append(tag)
            return app

        for tag in "abc":
            Process(sim, make(tag))
        sim.schedule(1.0, evt.fire)
        sim.run()
        assert sorted(woken) == ["a", "b", "c"]

    def test_negative_sleep_rejected(self, sim):
        def app(proc):
            yield proc.sleep(-1.0)

        Process(sim, app)
        with pytest.raises(ValueError):
            sim.run()
