"""Tests for receiver-side reassembly, including property tests."""

from hypothesis import given, strategies as st

from repro.tcp.reassembly import ReassemblyBuffer


class TestInOrder:
    def test_sequential_advance(self):
        r = ReassemblyBuffer()
        assert r.add(0, 100) == 100
        assert r.add(100, 100) == 100
        assert r.rcv_nxt == 200
        assert r.ooo_bytes == 0

    def test_duplicate_below_cum_point(self):
        r = ReassemblyBuffer()
        r.add(0, 100)
        assert r.add(0, 100) == 0
        assert r.duplicate_bytes == 100

    def test_partial_overlap_with_cum_point(self):
        r = ReassemblyBuffer()
        r.add(0, 100)
        assert r.add(50, 100) == 50
        assert r.rcv_nxt == 150

    def test_zero_length_ignored(self):
        r = ReassemblyBuffer()
        assert r.add(0, 0) == 0


class TestOutOfOrder:
    def test_gap_holds_cum_point(self):
        r = ReassemblyBuffer()
        r.add(100, 100)
        assert r.rcv_nxt == 0
        assert r.ooo_bytes == 100

    def test_filling_gap_advances_through(self):
        r = ReassemblyBuffer()
        r.add(100, 100)
        r.add(0, 100)
        assert r.rcv_nxt == 200
        assert r.ooo_bytes == 0

    def test_merge_adjacent_intervals(self):
        r = ReassemblyBuffer()
        r.add(100, 100)
        r.add(200, 100)
        assert r.ooo_bytes == 200
        assert len(r._ooo) == 1

    def test_merge_overlapping_intervals(self):
        r = ReassemblyBuffer()
        r.add(100, 100)
        r.add(150, 100)
        assert r.ooo_bytes == 150
        assert r.duplicate_bytes == 50

    def test_interval_bridging(self):
        r = ReassemblyBuffer()
        r.add(100, 50)
        r.add(200, 50)
        r.add(150, 50)  # bridges the two
        assert len(r._ooo) == 1
        assert r.ooo_bytes == 150

    def test_complete_through(self):
        r = ReassemblyBuffer()
        r.add(0, 500)
        assert r.is_complete_through(500)
        assert not r.is_complete_through(501)


class TestSackBlocks:
    def test_no_blocks_when_in_order(self):
        r = ReassemblyBuffer()
        r.add(0, 100)
        assert r.sack_blocks() == ()

    def test_most_recent_block_first(self):
        r = ReassemblyBuffer()
        r.add(100, 50)
        r.add(300, 50)
        blocks = r.sack_blocks()
        assert blocks[0] == (300, 350)
        assert (100, 150) in blocks

    def test_max_blocks_limit(self):
        r = ReassemblyBuffer()
        for start in (100, 300, 500, 700, 900):
            r.add(start, 50)
        assert len(r.sack_blocks(max_blocks=3)) == 3


@given(
    segments=st.lists(
        st.tuples(st.integers(min_value=0, max_value=50),
                  st.integers(min_value=1, max_value=10)),
        min_size=1, max_size=100,
    )
)
def test_property_accepted_bytes_equal_coverage(segments):
    """Sum of newly-accepted bytes == size of the union of segments."""
    r = ReassemblyBuffer()
    accepted = sum(r.add(seq, length) for seq, length in segments)
    covered = set()
    for seq, length in segments:
        covered.update(range(seq, seq + length))
    assert accepted == len(covered)


@given(
    segments=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30),
                  st.integers(min_value=1, max_value=8)),
        min_size=1, max_size=60,
    )
)
def test_property_rcv_nxt_is_first_uncovered_byte(segments):
    """rcv_nxt always equals the length of the contiguous prefix."""
    r = ReassemblyBuffer()
    covered = set()
    for seq, length in segments:
        r.add(seq, length)
        covered.update(range(seq, seq + length))
        expected = 0
        while expected in covered:
            expected += 1
        assert r.rcv_nxt == expected


@given(
    segments=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30),
                  st.integers(min_value=1, max_value=8)),
        min_size=1, max_size=60,
    )
)
def test_property_ooo_intervals_disjoint_sorted(segments):
    """Internal interval list stays disjoint, sorted and above rcv_nxt."""
    r = ReassemblyBuffer()
    for seq, length in segments:
        r.add(seq, length)
        for (s1, e1), (s2, e2) in zip(r._ooo, r._ooo[1:]):
            assert e1 < s2
        for s, e in r._ooo:
            assert s > r.rcv_nxt
            assert e > s
