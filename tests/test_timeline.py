"""Timeline reconstruction tests, including the record/replay round-trip.

The acceptance bar: figures recomputed from a recorded JSONL log must
match the live :class:`~repro.core.session.TransferStats` within 1 %.
"""

import pytest

from repro.analysis.timeline import (
    PhaseSpan,
    reconstruct,
    render_timelines,
)
from repro.core import run_fobs_transfer
from repro.telemetry import (
    EV_BATCH_SENT,
    EV_BITMAP_DELTA,
    EV_RESUME_EPOCH,
    EV_RETRANSMIT_ROUND,
    EV_STALL,
    EV_TRANSFER_END,
    EV_TRANSFER_START,
    Event,
    EventBus,
    JsonlSink,
    RingBufferSink,
)

from _support import quick_config, tiny_path


def _recorded_run(tmp_path, loss_rate=0.05, nbytes=300_000):
    """One DES transfer recorded to JSONL; returns (stats, log path)."""
    path = str(tmp_path / "run.jsonl")
    bus = EventBus(sinks=[JsonlSink(path, producer="test")])
    net = tiny_path(loss_rate=loss_rate, seed=1)
    stats = run_fobs_transfer(net, nbytes, quick_config(), telemetry=bus)
    bus.close()
    return stats, path


class TestRoundTrip:
    def test_stream_figures_match_live_stats_within_one_percent(
            self, tmp_path):
        stats, path = _recorded_run(tmp_path)
        assert stats.completed
        (tl,) = reconstruct(path)
        assert tl.completed
        assert tl.npackets == stats.npackets
        assert tl.packets_sent == stats.packets_sent
        assert tl.throughput_bps == pytest.approx(stats.throughput_bps,
                                                  rel=0.01)
        assert tl.wasted_fraction == pytest.approx(stats.wasted_fraction,
                                                   rel=0.01, abs=1e-9)
        assert tl.duration == pytest.approx(stats.duration, rel=0.01)

    def test_summary_cross_checks_stream(self, tmp_path):
        """The transfer_end summary and the stream agree — two
        independent paths to the same figures."""
        stats, path = _recorded_run(tmp_path)
        (tl,) = reconstruct(path)
        assert tl.summary["completed"]
        assert tl.summary["throughput_bps"] == pytest.approx(
            tl.throughput_bps, rel=0.01)
        assert tl.summary["wasted_fraction"] == pytest.approx(
            tl.wasted_fraction, rel=0.01, abs=1e-9)

    def test_losses_attributed_from_summary(self, tmp_path):
        stats, path = _recorded_run(tmp_path, loss_rate=0.05)
        (tl,) = reconstruct(path)
        assert tl.losses is not None
        assert tl.losses.random_losses > 0
        assert tl.losses.dominant_cause() == "random_loss"

    def test_clean_run_has_near_zero_waste(self, tmp_path):
        stats, path = _recorded_run(tmp_path, loss_rate=0.0)
        (tl,) = reconstruct(path)
        assert tl.wasted_fraction == pytest.approx(stats.wasted_fraction,
                                                   abs=1e-9)

    def test_render_mentions_outcome_and_throughput(self, tmp_path):
        _, path = _recorded_run(tmp_path)
        out = render_timelines(reconstruct(path))
        assert "completed" in out
        assert "Mb/s" in out


class TestReconstructFromEvents:
    """Synthetic event streams exercise the corners deterministically."""

    def _start(self, t=0.0, tid=1, epoch=0, **fields):
        defaults = dict(nbytes=10_000, npackets=10, packet_size=1000,
                        backend="test")
        defaults.update(fields)
        return Event(time=t, kind=EV_TRANSFER_START, transfer_id=tid,
                     epoch=epoch, fields=defaults)

    def test_attempts_keyed_by_transfer_and_epoch(self):
        events = [
            self._start(0.0, tid=1, epoch=0),
            self._start(0.0, tid=1, epoch=1),
            self._start(0.0, tid=2, epoch=0),
        ]
        tls = reconstruct(events)
        assert [(t.transfer_id, t.epoch) for t in tls] == [(1, 0), (1, 1),
                                                           (2, 0)]

    def test_stall_phases_and_probes(self):
        tid = 1
        mk = lambda t, **f: Event(time=t, kind=EV_STALL, transfer_id=tid,
                                  fields=f)
        events = [
            self._start(0.0),
            mk(2.0, action="enter"),
            mk(3.0, action="probe"),
            mk(4.0, action="probe"),
            mk(5.0, action="recovered"),
            Event(time=8.0, kind=EV_TRANSFER_END, transfer_id=tid,
                  fields={"completed": True}),
        ]
        (tl,) = reconstruct(events)
        assert tl.stall_probes == 2
        assert [(p.name, p.start, p.end) for p in tl.phases] == [
            ("blast", 0.0, 2.0), ("stalled", 2.0, 5.0), ("blast", 5.0, 8.0)]

    def test_unclosed_stall_extends_to_log_end(self):
        events = [
            self._start(0.0),
            Event(time=1.0, kind=EV_STALL, transfer_id=1,
                  fields={"action": "enter"}),
            Event(time=4.0, kind=EV_STALL, transfer_id=1,
                  fields={"action": "probe"}),
        ]
        (tl,) = reconstruct(events)
        assert tl.phases[-1] == PhaseSpan("stalled", 1.0, 4.0)
        assert not tl.completed

    def test_resume_epoch_salvage(self):
        events = [
            Event(time=0.0, kind=EV_RESUME_EPOCH, transfer_id=1, epoch=1,
                  fields={"salvaged": 60, "npackets": 100}),
            Event(time=1.0, kind=EV_BITMAP_DELTA, transfer_id=1, epoch=1,
                  fields={"received": 100, "new": 40}),
        ]
        (tl,) = reconstruct(events)
        assert tl.epoch == 1
        assert tl.resumed_packets == 60
        assert tl.npackets == 100
        assert "resumed: 60/100" in tl.render()

    def test_retransmit_rounds_take_the_max(self):
        events = [self._start(0.0)] + [
            Event(time=1.0 + i, kind=EV_RETRANSMIT_ROUND, transfer_id=1,
                  fields={"round": i + 1}) for i in range(3)]
        (tl,) = reconstruct(events)
        assert tl.retransmit_rounds == 3

    def test_receiver_only_log_reports_zero_waste(self):
        """No batch_sent events (a receiver-side recording): waste is
        unknowable from the stream and must not go negative."""
        events = [
            self._start(0.0),
            Event(time=1.0, kind=EV_BITMAP_DELTA, transfer_id=1,
                  fields={"received": 10, "new": 10}),
        ]
        (tl,) = reconstruct(events)
        assert tl.packets_sent == 0
        assert tl.wasted_fraction == 0.0

    def test_sender_only_log_falls_back_to_object_size(self):
        """No bitmap_delta events (a sender-side recording): a
        completed transfer still delivered the whole object."""
        events = [
            self._start(0.0),
            Event(time=1.0, kind=EV_BATCH_SENT, transfer_id=1,
                  fields={"size": 10, "sent": 10}),
            Event(time=2.0, kind=EV_TRANSFER_END, transfer_id=1,
                  fields={"completed": True}),
        ]
        (tl,) = reconstruct(events)
        assert tl.delivered_bytes == 10_000
        assert tl.throughput_bps == pytest.approx(10_000 * 8 / 2.0)

    def test_goodput_curve_buckets(self):
        events = [self._start(0.0)] + [
            Event(time=float(i + 1), kind=EV_BITMAP_DELTA, transfer_id=1,
                  fields={"received": (i + 1) * 2, "new": 2})
            for i in range(5)]
        (tl,) = reconstruct(events)
        times, rates = tl.goodput_curve(buckets=5)
        assert len(rates) == 5
        # Constant 2 packets (2000 bytes) per second.
        assert all(r == pytest.approx(2000 * 8.0) for r in rates)

    def test_accepts_ring_buffer_events(self):
        ring = RingBufferSink()
        bus = EventBus(sinks=[ring])
        ch = bus.channel(transfer_id=9)
        ch.emit(EV_TRANSFER_START, nbytes=1000, npackets=1, packet_size=1000,
                backend="test")
        ch.emit(EV_BATCH_SENT, size=1, sent=1)
        (tl,) = reconstruct(ring.events)
        assert tl.transfer_id == 9
        assert tl.packets_sent == 1

    def test_empty_log_renders_placeholder(self):
        assert render_timelines(reconstruct([])) == "(no transfers in log)"
