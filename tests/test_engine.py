"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.simnet.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_fifo(self, sim):
        order = []
        for tag in range(10):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list(range(10))

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self, sim):
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0

    def test_zero_delay_event_runs_at_same_time(self, sim):
        times = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancel_one_of_many(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        handle = sim.schedule(2.0, fired.append, "b")
        sim.schedule(3.0, fired.append, "c")
        handle.cancel()
        sim.run()
        assert fired == ["a", "c"]

    def test_cancel_releases_references(self, sim):
        class Big:
            pass

        obj = Big()
        handle = sim.schedule(1.0, lambda o: None, obj)
        handle.cancel()
        assert handle.args == ()


class TestRunBounds:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_run_until_resumable(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_when_no_events(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_bound(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_when_predicate(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(stop_when=lambda: len(fired) >= 4)
        assert fired == [0, 1, 2, 3]

    def test_run_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_runs_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]


class TestIntrospection:
    def test_pending_and_processed_counters(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.pending == 5
        sim.run()
        assert sim.pending == 0
        assert sim.processed == 5

    def test_peek_time_skips_cancelled(self, sim):
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self, sim):
        assert sim.peek_time() is None


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
def test_property_events_fire_in_nondecreasing_time(delays):
    """Whatever the scheduling order, firing times never decrease."""
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert len(times) == len(delays)
    assert all(t1 <= t2 for t1, t2 in zip(times, times[1:]))
