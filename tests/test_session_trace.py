"""Tests for session-level tracing."""

from repro.core import FobsTransfer
from repro.simnet.trace import Tracer

from _support import quick_config, tiny_path


class TestSessionTracing:
    def run_traced(self, tracer, nbytes=100_000):
        net = tiny_path()
        transfer = FobsTransfer(net, nbytes, quick_config(), tracer=tracer)
        stats = transfer.run()
        assert stats.completed
        return tracer

    def test_disabled_tracer_records_nothing(self):
        tracer = self.run_traced(Tracer(enabled=False))
        assert tracer.records == []

    def test_traces_cover_the_protocol_events(self):
        tracer = self.run_traced(Tracer(enabled=True))
        kinds = {r.kind for r in tracer.records}
        assert kinds == {"data_tx", "ack_rx", "ack_tx", "complete"}

    def test_data_tx_count_matches_packets_sent(self):
        tracer = Tracer(enabled=True)
        net = tiny_path()
        transfer = FobsTransfer(net, 100_000, quick_config(), tracer=tracer)
        stats = transfer.run()
        tx = sum(1 for r in tracer.records if r.kind == "data_tx")
        # Up to one batch may sit un-transmitted when the completion
        # signal stops the sender.
        assert stats.packets_sent - quick_config().batch_size <= tx <= stats.packets_sent

    def test_trace_times_monotone(self):
        tracer = self.run_traced(Tracer(enabled=True))
        times = [r.time for r in tracer.records]
        assert times == sorted(times)

    def test_completion_traced_once(self):
        tracer = self.run_traced(Tracer(enabled=True))
        assert sum(1 for r in tracer.records if r.kind == "complete") == 1

    def test_max_records_bound_respected(self):
        tracer = self.run_traced(Tracer(enabled=True, max_records=10))
        assert len(tracer.records) == 10
        assert tracer.truncated
