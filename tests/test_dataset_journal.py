"""Dataset journal: replay, torn tails, demotion, crash discipline."""

from __future__ import annotations

import os

import pytest

from repro.dataset.journal import (
    HEADER_BYTES,
    RECORD_BYTES,
    DatasetJournal,
    DatasetJournalCorrupt,
    DatasetJournalHeader,
    encode_record,
    replay_dataset_journal,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

DID = 0xDEADBEEF12345678
N = 64


class TestBasics:
    def test_create_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "ds.journal")
        with DatasetJournal.create(path, DID, N) as j:
            for i in (0, 5, 9, 5):  # duplicate mark is a no-op
                j.mark_done(i)
        replay = replay_dataset_journal(path)
        assert replay.done == {0, 5, 9}
        assert replay.records_applied == 3
        assert replay.header == DatasetJournalHeader(DID, N)

    def test_resume_continues_appending(self, tmp_path):
        path = str(tmp_path / "ds.journal")
        with DatasetJournal.create(path, DID, N) as j:
            j.mark_done(1)
        j2, replay = DatasetJournal.resume(path, DID, N)
        assert replay.done == {1}
        j2.mark_done(2)
        j2.close()
        assert replay_dataset_journal(path).done == {1, 2}

    def test_open_falls_back_to_create(self, tmp_path):
        path = str(tmp_path / "absent.journal")
        journal, replay = DatasetJournal.open(path, DID, N)
        assert replay is None and journal.done == set()
        journal.close()

    def test_range_check(self, tmp_path):
        with DatasetJournal.create(str(tmp_path / "j"), DID, N) as j:
            with pytest.raises(ValueError):
                j.mark_done(N)
            with pytest.raises(ValueError):
                j.mark_done(-1)


class TestCorruption:
    def test_wrong_dataset_raises(self, tmp_path):
        path = str(tmp_path / "j")
        DatasetJournal.create(path, DID, N).close()
        with pytest.raises(DatasetJournalCorrupt):
            replay_dataset_journal(
                path, expect=DatasetJournalHeader(DID + 1, N))
        # ... and open() starts fresh instead of trusting it
        journal, replay = DatasetJournal.open(path, DID + 1, N)
        assert replay is None
        journal.close()

    def test_torn_tail_is_discarded(self, tmp_path):
        path = str(tmp_path / "j")
        with DatasetJournal.create(path, DID, N) as j:
            j.mark_done(3)
            j.mark_done(7)
        with open(path, "ab") as fh:
            fh.write(encode_record(9, DID)[:RECORD_BYTES - 3])
        replay = replay_dataset_journal(path)
        assert replay.done == {3, 7}
        assert replay.torn_tail_bytes == RECORD_BYTES - 3
        # resume truncates the tear; appends land cleanly after it
        j2, _ = DatasetJournal.resume(path, DID, N)
        j2.mark_done(11)
        j2.close()
        assert replay_dataset_journal(path).done == {3, 7, 11}

    def test_bad_record_crc_is_skipped(self, tmp_path):
        path = str(tmp_path / "j")
        with DatasetJournal.create(path, DID, N) as j:
            j.mark_done(1)
            j.mark_done(2)
        with open(path, "r+b") as fh:
            fh.seek(HEADER_BYTES + RECORD_BYTES + 4)  # record 2's CRC
            fh.write(b"\xff\xff\xff\xff")
        replay = replay_dataset_journal(path)
        assert replay.done == {1}
        assert replay.records_dropped == 1

    def test_damaged_header_raises(self, tmp_path):
        path = str(tmp_path / "j")
        DatasetJournal.create(path, DID, N).close()
        with open(path, "r+b") as fh:
            fh.write(b"\x00\x00\x00\x00")
        with pytest.raises(DatasetJournalCorrupt):
            replay_dataset_journal(path)


class TestDemote:
    def test_demote_is_durable(self, tmp_path):
        path = str(tmp_path / "j")
        j = DatasetJournal.create(path, DID, N)
        for i in range(6):
            j.mark_done(i)
        assert j.demote([2, 4, 99]) == 2
        j.simulate_crash()  # kill right after the demotion
        assert replay_dataset_journal(path).done == {0, 1, 3, 5}

    def test_demote_idempotent(self, tmp_path):
        with DatasetJournal.create(str(tmp_path / "j"), DID, N) as j:
            j.mark_done(1)
            assert j.demote([1]) == 1
            assert j.demote([1]) == 0

    def test_compact_rewrites_one_record_per_object(self, tmp_path):
        path = str(tmp_path / "j")
        with DatasetJournal.create(path, DID, N) as j:
            for i in range(10):
                j.mark_done(i)
            j.compact()
        assert os.path.getsize(path) == HEADER_BYTES + 10 * RECORD_BYTES


class TestCrash:
    def test_flushed_records_survive_simulated_kill(self, tmp_path):
        path = str(tmp_path / "j")
        j = DatasetJournal.create(path, DID, N)
        j.mark_done(0)  # flush=True default
        j.mark_done(1)
        j.simulate_crash()
        assert replay_dataset_journal(path).done == {0, 1}

    def test_delete_retires_the_log(self, tmp_path):
        path = str(tmp_path / "j")
        j = DatasetJournal.create(path, DID, N)
        j.mark_done(0)
        j.delete()
        assert not os.path.exists(path)

    @settings(max_examples=25, deadline=None)
    @given(marks=st.lists(st.integers(0, N - 1), max_size=40),
           demotes=st.lists(st.integers(0, N - 1), max_size=10))
    def test_property_replay_equals_marks_minus_demotes(
            self, marks, demotes):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "j")
            j = DatasetJournal.create(path, DID, N)
            for i in marks:
                j.mark_done(i)
            j.demote(demotes)
            j.simulate_crash()
            assert replay_dataset_journal(path).done == \
                set(marks) - set(demotes)
