"""Layout-aware scheduler: ordering invariants across policies."""

from __future__ import annotations

import pytest

from repro.dataset.manifest import manifest_from_files
from repro.dataset.packing import KIND_STRIPE, PackingConfig, plan_objects
from repro.dataset.scheduler import (
    SchedulerConfig,
    default_spindle,
    lane_count,
    schedule,
    sequential_write_fraction,
)

CHUNK = 256
CFG = PackingConfig(object_bytes=2 * CHUNK, pack_threshold=CHUNK)


def striped_plan():
    """Three top-level dirs; two files stripe into 8 and 5 objects."""
    files = {
        "disk0/big.a": b"a" * (16 * CHUNK),       # 8 stripes
        "disk1/big.b": b"b" * (10 * CHUNK - 7),   # 5 stripes
        "disk2/mid": b"m" * (2 * CHUNK),          # whole
        "disk0/t1": b"1" * 20,                    # packed
        "disk1/t2": b"2" * 30,                    # packed (same object)
    }
    return plan_objects(manifest_from_files(files, CHUNK), CFG)


class TestPolicies:
    def test_fifo_is_plan_order(self):
        plan = striped_plan()
        order = schedule(plan, SchedulerConfig(policy="fifo"))
        assert [o.index for o in order] == [o.index for o in plan.objects]

    def test_random_is_seeded_and_deterministic(self):
        plan = striped_plan()
        a = schedule(plan, SchedulerConfig(policy="random", seed=42))
        b = schedule(plan, SchedulerConfig(policy="random", seed=42))
        c = schedule(plan, SchedulerConfig(policy="random", seed=43))
        assert [o.index for o in a] == [o.index for o in b]
        assert [o.index for o in a] != [o.index for o in c]
        assert sorted(o.index for o in a) == sorted(
            o.index for o in plan.objects)

    def test_layout_is_a_permutation(self):
        plan = striped_plan()
        order = schedule(plan, SchedulerConfig())
        assert sorted(o.index for o in order) == sorted(
            o.index for o in plan.objects)

    def test_layout_keeps_stripes_ascending_per_file(self):
        plan = striped_plan()
        for burst in (1, 2, 4):
            order = schedule(plan, SchedulerConfig(burst=burst))
            seen = {}
            for obj in order:
                if obj.kind != KIND_STRIPE:
                    continue
                path = obj.members[0].path
                assert obj.stripe == seen.get(path, -1) + 1
                seen[path] = obj.stripe
            assert sequential_write_fraction(order) == 1.0

    def test_layout_interleaves_across_lanes(self):
        plan = striped_plan()
        order = schedule(plan, SchedulerConfig(burst=1))
        # The two striped files' first stripes both appear before
        # either file's second stripe: lanes advance together.
        pos = {(o.members[0].path, o.stripe): i
               for i, o in enumerate(order) if o.kind == KIND_STRIPE}
        assert pos[("disk0/big.a", 0)] < pos[("disk1/big.b", 1)]
        assert pos[("disk1/big.b", 0)] < pos[("disk0/big.a", 1)]

    def test_random_order_breaks_sequentiality(self):
        plan = striped_plan()
        frac = sequential_write_fraction(
            schedule(plan, SchedulerConfig(policy="random", seed=7)))
        assert frac < 1.0


class TestLanes:
    def test_lane_count(self):
        plan = striped_plan()
        # 2 stripe lanes (one per striped file) + spindle lanes for
        # disk2 (whole) and disk0 (the packed object's first member).
        assert lane_count(plan) == 4

    def test_custom_spindle_function(self):
        plan = striped_plan()
        one_disk = SchedulerConfig(spindle_of=lambda path: "only")
        assert lane_count(plan, one_disk) == 3  # 2 stripe lanes + 1

    def test_default_spindle(self):
        assert default_spindle("disk0/a/b") == "disk0"
        assert default_spindle("rootfile") == ""


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            SchedulerConfig(policy="clairvoyant")

    def test_bad_burst(self):
        with pytest.raises(ValueError):
            SchedulerConfig(burst=0)
