"""Tests for topology construction and the paper's path presets."""

import pytest

from repro.simnet import topology
from repro.simnet.packet import Address
from repro.simnet.sockets import UdpSocket
from repro.simnet.topology import HopSpec, MBPS, PathSpec, build_path


def one_way_delay(net, payload=1024):
    """Measure first-frame latency from a to b."""
    tx = UdpSocket(net.a, net.a.allocate_port())
    rx = UdpSocket(net.b, 555)
    tx.sendto(None, payload, Address(net.b.name, 555))
    net.sim.run()
    assert rx.datagrams_received == 1
    return net.sim.now


class TestBuildPath:
    def test_single_hop_path(self):
        spec = PathSpec("p", "x", "y", hops=(HopSpec(1e6, 0.01, 10_000),))
        net = build_path(spec)
        assert net.a.name == "x"
        assert net.b.name == "y"
        assert not net.routers

    def test_multi_hop_creates_routers(self):
        spec = PathSpec("p", "x", "y", hops=(
            HopSpec(1e6, 0.01, 10_000), HopSpec(None, 0.01), HopSpec(1e6, 0.01, 10_000),
        ))
        net = build_path(spec)
        assert set(net.routers) == {"r1", "r2"}

    def test_bidirectional_connectivity(self):
        net = topology.short_haul()
        # a -> b
        tx = UdpSocket(net.a, net.a.allocate_port())
        rx = UdpSocket(net.b, 700)
        tx.sendto(None, 100, Address("lcse", 700))
        # b -> a
        tx2 = UdpSocket(net.b, net.b.allocate_port())
        rx2 = UdpSocket(net.a, 701)
        tx2.sendto(None, 100, Address("anl", 701))
        net.sim.run()
        assert rx.datagrams_received == 1
        assert rx2.datagrams_received == 1

    def test_empty_hops_rejected(self):
        with pytest.raises(ValueError):
            build_path(PathSpec("p", "x", "y", hops=()))

    def test_rtt_helper(self):
        spec = PathSpec("p", "x", "y", hops=(HopSpec(1e6, 0.01), HopSpec(None, 0.02)))
        assert spec.rtt() == pytest.approx(0.06)


class TestPresets:
    def test_short_haul_rtt_near_26ms(self):
        assert topology.short_haul().spec.rtt() == pytest.approx(26e-3, rel=0.05)

    def test_long_haul_rtt_near_65ms(self):
        assert topology.long_haul().spec.rtt() == pytest.approx(65e-3, rel=0.05)

    def test_short_haul_one_way_delay(self):
        delay = one_way_delay(topology.short_haul())
        assert 0.012 < delay < 0.016

    def test_bottlenecks(self):
        assert topology.short_haul().spec.bottleneck_bps == 100 * MBPS
        assert topology.gigabit_path().spec.bottleneck_bps == pytest.approx(622e6)

    def test_gigabit_path_uses_gige_profile(self):
        net = topology.gigabit_path()
        assert net.a.profile.recv_packet_cost == pytest.approx(150e-6)

    def test_contended_path_has_cross_traffic(self):
        net = topology.contended_path()
        assert len(net.cross_sources) == 1
        assert "xsrc" in net.hosts

    def test_contended_path_without_cross_traffic(self):
        net = topology.contended_path(cross_rate_bps=0)
        assert not net.cross_sources

    def test_presets_are_seed_deterministic(self):
        from repro.core import run_fobs_transfer
        s1 = run_fobs_transfer(topology.long_haul(seed=3), 200_000)
        s2 = run_fobs_transfer(topology.long_haul(seed=3), 200_000)
        assert s1.duration == s2.duration
        assert s1.packets_sent == s2.packets_sent


class TestAttachHost:
    def test_attached_host_reachable_both_ways(self):
        net = topology.short_haul()
        extra = net.attach_host("extra", router_index=1)
        rx = UdpSocket(extra, 800)
        tx = UdpSocket(net.a, net.a.allocate_port())
        tx.sendto(None, 100, Address("extra", 800))
        rx2 = UdpSocket(net.b, 801)
        tx2 = UdpSocket(extra, extra.allocate_port())
        tx2.sendto(None, 100, Address("lcse", 801))
        net.sim.run()
        assert rx.datagrams_received == 1
        assert rx2.datagrams_received == 1

    def test_attach_to_non_router_rejected(self):
        net = topology.short_haul()
        with pytest.raises(ValueError):
            net.attach_host("bad", router_index=0)  # index 0 is endpoint a

    def test_link_between_lookup(self):
        net = topology.short_haul()
        link = net.link_between("anl", "r1")
        assert link.bandwidth_bps == 100 * MBPS
