"""Unit tests for the telemetry subsystem (events, metrics, bus, sinks)."""

import io
import json

import pytest

from repro.telemetry import (
    EV_BATCH_SENT,
    EV_META,
    EV_SNAPSHOT,
    EV_STALL,
    EV_TRANSFER_START,
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    Event,
    EventBus,
    JsonlSink,
    MetricsRegistry,
    RingBufferSink,
    SnapshotSink,
    read_events,
)
from repro.telemetry.bus import NULL_CHANNEL
from repro.telemetry.events import RESERVED_KEYS, SAMPLED_KINDS, meta_event


class TestEvent:
    def test_json_round_trip(self):
        ev = Event(time=1.25, kind=EV_BATCH_SENT, transfer_id=0xABC,
                   epoch=2, src="sender", fields={"size": 64, "sent": 128})
        back = Event.from_json(ev.to_json())
        assert back == ev

    def test_compact_envelope_omits_defaults(self):
        record = json.loads(Event(time=0.5, kind=EV_STALL).to_json())
        assert record == {"t": 0.5, "kind": EV_STALL}

    def test_reserved_key_collision_raises(self):
        ev = Event(time=0.0, kind=EV_STALL, fields={"tid": 1})
        with pytest.raises(ValueError, match="reserved"):
            ev.to_json()
        assert RESERVED_KEYS == {"t", "kind", "tid", "epoch", "src"}

    def test_from_json_rejects_non_events(self):
        with pytest.raises(ValueError):
            Event.from_json("[1, 2, 3]")
        with pytest.raises(ValueError):
            Event.from_json('{"t": 1.0}')

    def test_sampled_kinds_are_a_subset_of_the_vocabulary(self):
        assert SAMPLED_KINDS < set(EVENT_KINDS)


class TestReadEvents:
    def test_reads_path_and_skips_blank_lines(self, tmp_path):
        p = tmp_path / "log.jsonl"
        p.write_text(meta_event("test").to_json() + "\n\n"
                     + Event(time=1.0, kind=EV_STALL).to_json() + "\n")
        events = list(read_events(str(p)))
        assert [e.kind for e in events] == [EV_META, EV_STALL]
        assert events[0].fields["schema"] == EVENT_SCHEMA_VERSION

    def test_newer_schema_major_refused(self):
        newer = json.dumps({"t": 0, "kind": "meta",
                            "schema": EVENT_SCHEMA_VERSION + 1})
        with pytest.raises(ValueError, match="newer"):
            list(read_events(io.StringIO(newer + "\n")))


class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("packets_sent", role="sender")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("active")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2

    def test_registry_caches_by_name_and_labels(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)
        assert reg.counter("x", a=1) is not reg.counter("x", a=2)
        assert reg.counter("x", a=1) is not reg.gauge("x", a=1)

    def test_histogram_quantiles_within_log_bucket_error(self):
        h = MetricsRegistry().histogram("latency")
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.count == 1000
        assert h.min == 1.0 and h.max == 1000.0
        assert h.mean == pytest.approx(500.5)
        # Log-scale buckets estimate within ~9 % anywhere on the axis.
        assert h.p50 == pytest.approx(500, rel=0.09)
        assert h.p95 == pytest.approx(950, rel=0.09)
        assert h.p99 == pytest.approx(990, rel=0.09)

    def test_histogram_zero_bucket(self):
        h = MetricsRegistry().histogram("waste")
        h.observe(0.0)
        h.observe(0.0)
        h.observe(10.0)
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) > 0.0

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc(100)
        assert c.value == 0.0
        h = reg.histogram("y")
        h.observe(5.0)
        assert h.p99 == 0.0
        assert reg.collect() == []

    def test_render(self):
        reg = MetricsRegistry()
        reg.counter("sent", role="sender").inc(7)
        reg.histogram("dur").observe(2.0)
        out = reg.render()
        assert "sent{role=sender} 7" in out
        assert "dur count=1" in out


class TestEventBus:
    def test_disabled_without_sinks(self):
        bus = EventBus()
        assert not bus.enabled
        assert not bus.channel(transfer_id=1).enabled
        assert not NULL_CHANNEL.enabled
        NULL_CHANNEL.emit(EV_STALL, action="enter")  # must not raise

    def test_channel_labels_and_clock(self):
        ring = RingBufferSink()
        bus = EventBus(sinks=[ring])
        t = [0.0]
        ch = bus.channel(transfer_id=7, epoch=1, src="sender",
                         clock=lambda: t[0])
        t[0] = 2.5
        ch.emit(EV_STALL, action="enter")
        (ev,) = ring.events
        assert (ev.time, ev.transfer_id, ev.epoch, ev.src) == (2.5, 7, 1,
                                                               "sender")
        assert ev.fields == {"action": "enter"}

    def test_sampling_thins_high_rate_kinds_only(self):
        ring = RingBufferSink()
        bus = EventBus(sinks=[ring], sample_every=10)
        ch = bus.channel(transfer_id=1)
        for _ in range(100):
            ch.emit(EV_BATCH_SENT, size=1)
        for _ in range(5):
            ch.emit(EV_STALL, action="probe")
        assert len(ring.of_kind(EV_BATCH_SENT)) == 10
        assert len(ring.of_kind(EV_STALL)) == 5  # milestones never thinned
        assert bus.events_sampled_out == 90

    def test_sampling_is_per_transfer(self):
        ring = RingBufferSink()
        bus = EventBus(sinks=[ring], sample_every=2)
        bus.channel(transfer_id=1).emit(EV_BATCH_SENT)
        bus.channel(transfer_id=2).emit(EV_BATCH_SENT)
        # Each transfer's first sample passes; neither silences the other.
        assert len(ring.of_kind(EV_BATCH_SENT)) == 2

    def test_fan_out_to_all_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        bus = EventBus(sinks=[a])
        bus.add_sink(b)
        bus.channel().emit(EV_STALL, action="enter")
        assert a.accepted == 1 and b.accepted == 1


class TestRingBufferSink:
    def test_capacity_and_dropped(self):
        ring = RingBufferSink(capacity=3)
        for i in range(5):
            ring.accept(Event(time=float(i), kind=EV_STALL))
        assert len(ring.events) == 3
        assert ring.dropped == 2
        assert ring.events[0].time == 2.0


class TestJsonlSink:
    def test_meta_header_then_events(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sink = JsonlSink(path, producer="unit-test")
        bus = EventBus(sinks=[sink])
        bus.channel(transfer_id=3).emit(EV_TRANSFER_START, nbytes=100)
        bus.close()
        events = list(read_events(path))
        assert events[0].kind == EV_META
        assert events[0].fields["producer"] == "unit-test"
        assert events[1].kind == EV_TRANSFER_START
        assert events[1].fields["nbytes"] == 100

    def test_borrowed_stream_not_closed(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.close()
        assert not buf.closed
        assert buf.getvalue().splitlines()  # meta line present


class TestSnapshotSink:
    class _Snap:
        def render(self):
            return "snap!"

        def counters(self):
            return {"active": 2}

    def test_interval_gating_and_event(self):
        ring = RingBufferSink()
        bus = EventBus(sinks=[ring])
        out = io.StringIO()
        sink = SnapshotSink(self._Snap, interval=10.0, out=out, bus=bus,
                            clock=lambda: 0.0)
        assert not sink.maybe_emit(now=5.0)
        assert sink.maybe_emit(now=10.0)
        assert not sink.maybe_emit(now=15.0)
        assert sink.maybe_emit(now=20.0)
        assert out.getvalue() == "snap!\nsnap!\n"
        snaps = ring.of_kind(EV_SNAPSHOT)
        assert len(snaps) == 2
        assert snaps[0].fields == {"active": 2}
