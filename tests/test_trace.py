"""Tests for the tracing facility."""

from repro.simnet.trace import Tracer


class TestTracer:
    def test_disabled_by_default(self):
        t = Tracer()
        t.emit(1.0, "tx", "frame 1")
        assert t.records == []

    def test_records_when_enabled(self):
        t = Tracer(enabled=True)
        t.emit(1.0, "tx", "frame 1")
        t.emit(2.0, "rx", "frame 1")
        assert len(t.records) == 2
        assert t.records[0].kind == "tx"

    def test_max_records_truncates(self):
        t = Tracer(enabled=True, max_records=2)
        for i in range(5):
            t.emit(float(i), "tx", str(i))
        assert len(t.records) == 2
        assert t.truncated

    def test_of_kind_filter(self):
        t = Tracer(enabled=True)
        t.emit(1.0, "tx", "a")
        t.emit(2.0, "rx", "b")
        t.emit(3.0, "tx", "c")
        assert [r.detail for r in t.of_kind("tx")] == ["a", "c"]

    def test_render(self):
        t = Tracer(enabled=True)
        for i in range(3):
            t.emit(float(i), "tx", f"frame {i}")
        out = t.render(limit=2)
        assert "frame 0" in out
        assert "1 more" in out
