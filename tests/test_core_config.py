"""Tests for FOBS configuration validation."""

import pytest

from repro.core.config import FobsConfig


class TestValidation:
    def test_defaults_match_paper(self):
        cfg = FobsConfig()
        assert cfg.packet_size == 1024  # the paper's packet size
        assert cfg.batch_size == 2      # "two packets per batch-send"
        assert cfg.scheduler == "circular"
        assert cfg.congestion_mode == "greedy"

    @pytest.mark.parametrize("kwargs", [
        {"packet_size": 0},
        {"ack_frequency": 0},
        {"batch_size": 0},
        {"batch_size": 8, "max_batch_size": 4},
        {"scheduler": "bogus"},
        {"batch_policy": "bogus"},
        {"congestion_mode": "bogus"},
        {"congestion_threshold": 0.0},
        {"congestion_threshold": 1.0},
        {"recv_buffer": 100, "packet_size": 1024},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FobsConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FobsConfig().packet_size = 99  # type: ignore[misc]


class TestNpackets:
    def test_exact_multiple(self):
        assert FobsConfig(packet_size=1000).npackets(10_000) == 10

    def test_rounds_up(self):
        assert FobsConfig(packet_size=1000).npackets(10_001) == 11

    def test_single_short_packet(self):
        assert FobsConfig(packet_size=1024).npackets(5) == 1

    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            FobsConfig().npackets(0)
