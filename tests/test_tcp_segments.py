"""Tests for segment wire-size accounting and TcpOptions."""

import pytest

from repro.tcp.options import MAX_UNSCALED_WINDOW, TcpOptions
from repro.tcp.segments import Segment, segment_option_bytes


class TestSegment:
    def test_end_property(self):
        assert Segment(seq=100, length=50).end == 150

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            Segment(seq=-1)

    def test_defaults(self):
        s = Segment()
        assert s.is_ack and not s.syn and not s.fin


class TestOptionBytes:
    def test_plain_segment_has_no_options(self):
        assert segment_option_bytes(Segment(seq=0, length=100)) == 0

    def test_sack_blocks_cost(self):
        s = Segment(sack_blocks=((0, 10),))
        assert segment_option_bytes(s) == 12  # 2 + 8, padded to 12

    def test_three_sack_blocks(self):
        s = Segment(sack_blocks=((0, 10), (20, 30), (40, 50)))
        assert segment_option_bytes(s) == 28  # 2 + 24, padded

    def test_syn_option_offers(self):
        s = Segment(syn=True, is_ack=False, offer_window_scaling=True, offer_sack=True)
        assert segment_option_bytes(s) == 8

    def test_syn_without_offers(self):
        s = Segment(syn=True, is_ack=False)
        assert segment_option_bytes(s) == 0


class TestTcpOptions:
    def test_rwnd_cap_without_scaling(self):
        o = TcpOptions(window_scaling=False, recv_buffer=1 << 20)
        assert o.rwnd_cap(peer_window_scaling=True) == MAX_UNSCALED_WINDOW

    def test_rwnd_cap_requires_both_sides(self):
        o = TcpOptions(window_scaling=True, recv_buffer=1 << 20)
        assert o.rwnd_cap(peer_window_scaling=False) == MAX_UNSCALED_WINDOW
        assert o.rwnd_cap(peer_window_scaling=True) == 1 << 20

    def test_small_buffer_caps_below_64k(self):
        o = TcpOptions(window_scaling=True, recv_buffer=32 * 1024)
        assert o.rwnd_cap(True) == 32 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            TcpOptions(mss=0)
        with pytest.raises(ValueError):
            TcpOptions(send_buffer=100)
        with pytest.raises(ValueError):
            TcpOptions(init_cwnd_segments=0)
        with pytest.raises(ValueError):
            TcpOptions(min_rto=2.0, max_rto=1.0)
