"""Shared-socket demux: transfer-id routing and stale-epoch rejection."""

import numpy as np
import pytest

from repro.core.packets import AckPacket, DataPacket
from repro.runtime import wire
from repro.server import (
    RECEIVING,
    SENDING,
    RegisteredTransfer,
    TransferRegistry,
)


class TestRouting:
    def test_routes_to_registered_entry(self):
        registry = TransferRegistry()
        reg = RegisteredTransfer(0xAB, epoch=1, kind=SENDING, entry="S")
        registry.add(reg)
        assert registry.route(0xAB, 1) is reg
        assert registry.route(0xAB, 1, kind=SENDING) is reg

    def test_unknown_id_misses_without_counting(self):
        registry = TransferRegistry()
        assert registry.route(0xDEAD, 0) is None
        assert registry.counters.unknown_transfer == 0
        registry.count_unknown()  # the daemon counts the *final* miss
        assert registry.counters.unknown_transfer == 1

    def test_stale_epoch_dropped_and_counted(self):
        registry = TransferRegistry()
        registry.add(RegisteredTransfer(7, epoch=2, kind=RECEIVING))
        assert registry.route(7, 1) is None
        assert registry.route(7, 3) is None
        assert registry.counters.stale_epoch == 2
        assert registry.route(7, 2) is not None

    def test_kind_mismatch_is_silent(self):
        """Demux probes both interpretations; a kind miss is not a drop."""
        registry = TransferRegistry()
        registry.add(RegisteredTransfer(9, epoch=0, kind=SENDING))
        assert registry.route(9, 0, kind=RECEIVING) is None
        assert registry.counters.stale_epoch == 0
        assert registry.counters.unknown_transfer == 0


class TestLifecycle:
    def test_add_supersedes_prior_attempt(self):
        registry = TransferRegistry()
        old = RegisteredTransfer(5, epoch=0, kind=SENDING, entry="old")
        new = RegisteredTransfer(5, epoch=1, kind=SENDING, entry="new")
        assert registry.add(old) is None
        assert registry.add(new) is old
        assert registry.counters.superseded == 1
        assert registry.route(5, 1).entry == "new"
        assert len(registry) == 1

    def test_remove_and_contains(self):
        registry = TransferRegistry()
        registry.add(RegisteredTransfer(3, epoch=0, kind=RECEIVING))
        assert 3 in registry
        assert registry.remove(3).transfer_id == 3
        assert 3 not in registry and registry.remove(3) is None

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            RegisteredTransfer(1, epoch=0, kind="bogus")


class TestPeekIntegration:
    """peek_session + registry is the real demux path end to end."""

    def test_ack_datagram_routes_to_sending_entry(self):
        session = wire.SessionContext(transfer_id=0x1234, epoch=3)
        ack = wire.encode_ack(
            AckPacket(ack_id=0, received_count=10,
                      bitmap=np.ones(10, dtype=np.bool_)),
            session=session)
        peeked = wire.peek_session(ack, "ack")
        assert peeked == (0x1234, 3)
        registry = TransferRegistry()
        reg = RegisteredTransfer(0x1234, epoch=3, kind=SENDING)
        registry.add(reg)
        assert registry.route(*peeked, kind=SENDING) is reg

    def test_data_datagram_routes_to_receiving_entry(self):
        session = wire.SessionContext(transfer_id=0x77, epoch=0)
        datagram = wire.encode_data(
            DataPacket(seq=4, total=32, payload_bytes=64), b"x" * 64,
            session=session)
        peeked = wire.peek_session(datagram, "data")
        assert peeked == (0x77, 0)
        registry = TransferRegistry()
        reg = RegisteredTransfer(0x77, epoch=0, kind=RECEIVING)
        registry.add(reg)
        assert registry.route(*peeked, kind=RECEIVING) is reg

    def test_datagram_too_short_for_extension_peeks_none(self):
        datagram = wire.encode_data(
            DataPacket(seq=0, total=1, payload_bytes=4), b"y" * 4)
        assert wire.peek_session(datagram, "data") is None

    def test_sessionless_garbage_peek_misses_in_registry(self):
        """peek_session doesn't validate; the registry miss is the guard."""
        datagram = wire.encode_data(
            DataPacket(seq=0, total=1, payload_bytes=32), b"y" * 32)
        peeked = wire.peek_session(datagram, "data")
        assert peeked is not None  # garbage tid from payload bytes
        assert TransferRegistry().route(*peeked) is None
