"""Telemetry histogram quantile accuracy on adversarial samples.

The SLO report quotes queue-wait and duration p50/p99 straight from
:class:`repro.telemetry.metrics.Histogram` (log-scale buckets, base
2^(1/4)).  The design contract is "within one geometric bin of the
exact sample quantile"; these tests pin that on the distributions most
likely to break a bucketed estimator — bimodal mixtures whose modes
straddle many octaves, and heavy-tailed samples where p99 lives far
from the mass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.metrics import _LOG_BASE, MetricsRegistry

#: One-bin tolerance: the estimate is the geometric midpoint of its
#: bucket, so it can sit at most 1.5 bucket-widths (in log space) from
#: any exact sample value that maps into an adjacent bucket.
ONE_BIN = _LOG_BASE ** 1.5


def exact_quantile(values: np.ndarray, q: float) -> float:
    return float(np.quantile(values, q))


def fill(values: np.ndarray):
    hist = MetricsRegistry().histogram("sample")
    for v in values:
        hist.observe(float(v))
    return hist


def assert_within_one_bin(estimate: float, exact: float) -> None:
    assert exact > 0.0
    ratio = estimate / exact
    assert 1.0 / ONE_BIN <= ratio <= ONE_BIN, (
        f"estimate {estimate:.6g} vs exact {exact:.6g} "
        f"(ratio {ratio:.4f}, allowed {1 / ONE_BIN:.4f}..{ONE_BIN:.4f})")


class TestBimodal:
    def _sample(self, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        # Two tight modes five orders of magnitude apart: fast-path
        # queue waits (~1 ms) and stuck-behind-the-storm waits (~30 s).
        fast = rng.lognormal(np.log(1e-3), 0.1, size=700)
        slow = rng.lognormal(np.log(30.0), 0.1, size=300)
        return np.concatenate([fast, slow])

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_p50_in_fast_mode(self, seed):
        values = self._sample(seed)
        hist = fill(values)
        exact = exact_quantile(values, 0.50)
        assert exact < 1e-2  # p50 sits in the fast mode
        assert_within_one_bin(hist.p50, exact)

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_p99_in_slow_mode(self, seed):
        values = self._sample(seed)
        hist = fill(values)
        exact = exact_quantile(values, 0.99)
        assert exact > 10.0  # p99 sits in the slow mode
        assert_within_one_bin(hist.p99, exact)

    def test_mode_boundary_quantile(self):
        # q = 0.70 lands exactly on the gap between the modes; the
        # estimator must pick a bucket belonging to one of them, not
        # an interpolated value in the empty gap.
        values = self._sample(3)
        hist = fill(values)
        est = hist.quantile(0.70)
        assert est < 1e-2 or est > 10.0


class TestHeavyTailed:
    def _sample(self, seed: int, alpha: float = 1.3) -> np.ndarray:
        rng = np.random.default_rng(seed)
        # Pareto(alpha) with alpha < 2: infinite variance, the p99
        # estimate must survive a tail thousands of times the median.
        return (1.0 + rng.pareto(alpha, size=5000)) * 1e-2

    @pytest.mark.parametrize("seed", [2, 11, 42])
    @pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
    def test_quantiles_track_exact(self, seed, q):
        values = self._sample(seed)
        hist = fill(values)
        assert_within_one_bin(hist.quantile(q), exact_quantile(values, q))

    def test_extreme_alpha_near_one(self):
        values = self._sample(5, alpha=1.05)
        hist = fill(values)
        assert_within_one_bin(hist.p99, exact_quantile(values, 0.99))


class TestEdgeCases:
    def test_zeros_have_their_own_bucket(self):
        hist = MetricsRegistry().histogram("zeros")
        for _ in range(90):
            hist.observe(0.0)
        for _ in range(10):
            hist.observe(5.0)
        assert hist.p50 == 0.0
        assert_within_one_bin(hist.p99, 5.0)

    def test_single_observation(self):
        hist = MetricsRegistry().histogram("one")
        hist.observe(0.25)
        for q in (0.5, 0.95, 0.99):
            assert_within_one_bin(hist.quantile(q), 0.25)

    def test_empty_histogram_quantile_is_zero(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.p50 == 0.0
        assert hist.p99 == 0.0
