"""Frame-conservation property tests for links under random traffic."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.packet import Address, udp_frame
from repro.simnet.queues import DropTailQueue


class CountingSink:
    def __init__(self):
        self.delivered = 0

    def receive(self, frame):
        self.delivered += 1


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=29, max_value=1500),
                   min_size=1, max_size=200),
    queue_bytes=st.integers(min_value=1500, max_value=20_000),
    loss=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(0, 1000),
)
def test_property_frames_conserved(sizes, queue_bytes, loss, seed):
    """offered == delivered + queue-dropped + randomly-lost, always."""
    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=1e6, prop_delay=1e-3,
                queue=DropTailQueue(queue_bytes),
                loss_rate=loss, rng=np.random.default_rng(seed))
    sink = CountingSink()
    link.connect(sink)
    a, b = Address("a", 1), Address("b", 2)
    for nbytes in sizes:
        link.send(udp_frame(a, b, None, nbytes - 28))
    sim.run()
    offered = link.stats.frames_offered
    assert offered == len(sizes)
    assert offered == (
        sink.delivered + link.queue.stats.dropped + link.stats.frames_lost_random
    )
    # once drained, no bytes remain queued
    assert link.queue.bytes_queued == 0


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=29, max_value=1500),
                   min_size=2, max_size=100),
)
def test_property_fifo_delivery_order(sizes):
    """A serializing link without loss delivers frames in send order."""
    sim = Simulator()
    link = Link(sim, "l", bandwidth_bps=1e7, prop_delay=1e-3,
                queue=DropTailQueue(1 << 20))
    order = []

    class Sink:
        def receive(self, frame):
            order.append(frame.payload)

    link.connect(Sink())
    a, b = Address("a", 1), Address("b", 2)
    for i, nbytes in enumerate(sizes):
        link.send(udp_frame(a, b, i, nbytes - 28))
    sim.run()
    assert order == list(range(len(sizes)))
