"""Shared helpers for the test suite (imported by test modules).

Kept outside conftest.py so the import name is unambiguous when tests
and benchmarks run in the same pytest invocation.
"""

from __future__ import annotations

from repro.core.config import FobsConfig
from repro.simnet.topology import HopSpec, MBPS, Network, PathSpec, build_path


def tiny_path(
    seed: int = 0,
    bandwidth_bps: float = 100 * MBPS,
    delay: float = 1e-3,
    queue_bytes: int = 64 * 1024,
    loss_rate: float = 0.0,
) -> Network:
    """A minimal two-hop path for fast protocol tests (RTT = 4*delay)."""
    spec = PathSpec(
        name="tiny",
        a_name="a",
        b_name="b",
        hops=(
            HopSpec(bandwidth_bps, delay, queue_bytes=queue_bytes, loss_rate=loss_rate),
            HopSpec(bandwidth_bps, delay, queue_bytes=queue_bytes),
        ),
        bottleneck_bps=bandwidth_bps,
    )
    return build_path(spec, seed=seed)


def quick_config(**overrides) -> FobsConfig:
    """FOBS config suited to sub-MB test transfers."""
    defaults = dict(ack_frequency=16)
    defaults.update(overrides)
    return FobsConfig(**defaults)
