"""The composed chaos matrix: network × storage × kill, ≥200 scenarios.

Every scenario runs a real two-thread loopback transfer (TCP control +
UDP data) with seeded faults on all three axes and checks the single
invariant the robustness work exists to provide:

    a transfer either delivers bytes identical to the source or
    reports a failure — **never silent corruption**.

The matrix is 5 network × 6 storage × 2 kill × 4 seeds = 240 scenarios
(plus a no-verify wing exercising the CRC32 fallback).  Scenarios are
independent (own workdir, own port) and IO-bound, so they run on a
thread pool to keep wall-clock sane.

The second half proves the *economics* acceptance: on the same seed, a
digest-demoted resume re-sends strictly fewer packets than a full
restart.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.chaos import (
    ChaosScenario,
    HostFaultSchedule,
    run_chaos_transfer,
)
from repro.core.config import FobsConfig
from repro.runtime.files import receive_file, send_file
from repro.simnet.faults import KillSwitch

pytestmark = [pytest.mark.loopback, pytest.mark.chaos]

NETWORK = {
    "net-clean": dict(),
    "net-drop5": dict(drop_rate=0.05),
    "net-drop15": dict(drop_rate=0.15),
    "net-flip2": dict(corrupt_rate=0.02),
    "net-drop-flip": dict(drop_rate=0.08, corrupt_rate=0.02),
}

STORAGE = {
    "disk-clean": HostFaultSchedule(),
    "disk-torn": HostFaultSchedule(torn_write_rate=0.08),
    "disk-bitrot": HostFaultSchedule(bitrot_rate=0.08),
    "disk-torn-rot": HostFaultSchedule(torn_write_rate=0.05,
                                       bitrot_rate=0.05),
    "disk-enospc": HostFaultSchedule(error_ops=((9, "ENOSPC"),)),
    "disk-eio": HostFaultSchedule(error_ops=((4, "EIO"),)),
}

KILL = {"nokill": 0, "kill": 10}

SEEDS = [101, 202, 303, 404]


def matrix():
    out = []
    for net_name, net in NETWORK.items():
        for disk_name, disk in STORAGE.items():
            for kill_name, kill in KILL.items():
                for seed in SEEDS:
                    out.append(ChaosScenario(
                        name=f"{net_name}/{disk_name}/{kill_name}/s{seed}",
                        seed=seed, nbytes=16384, packet_size=512,
                        host=disk, kill_sender_after=kill,
                        max_attempts=6, **net))
    return out


def run_one(tmp_root, scenario):
    workdir = os.path.join(tmp_root, scenario.name.replace("/", "_"))
    os.makedirs(workdir, exist_ok=True)
    return run_chaos_transfer(scenario, workdir)


class TestChaosMatrix:
    def test_no_silent_corruption_across_240_scenarios(self, tmp_path):
        scenarios = matrix()
        assert len(scenarios) >= 200  # the acceptance floor
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(
                lambda sc: run_one(str(tmp_path), sc), scenarios))

        violations = [r for r in results if r.silent_corruption]
        assert not violations, (
            "SILENT CORRUPTION in: "
            + ", ".join(v.scenario.name for v in violations))

        # The matrix must actually have exercised the machinery, not
        # vacuously passed on a fault-free run.
        completed = sum(r.completed for r in results)
        assert completed >= len(results) * 0.8, (
            f"only {completed}/{len(results)} scenarios converged; "
            "the matrix is too hostile to be meaningful")
        assert sum(r.host_stats.corruptions for r in results) > 0
        assert sum(r.packets_demoted for r in results) > 0
        assert sum(r.storage_faults for r in results) > 0
        assert any(r.attempts > 1 for r in results)
        # Every non-completed scenario carries a diagnosable reason.
        for r in results:
            if not r.completed:
                assert r.failure_reason

    def test_noverify_wing_crc_fallback_still_never_silent(self, tmp_path):
        """Legacy peers (no VERIFY negotiation) fall back to the
        whole-object CRC32: corruption may exhaust the retry budget,
        but it must surface as a reported failure, never a bad file."""
        results = []
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(
                lambda sc: run_one(str(tmp_path), sc),
                [ChaosScenario(
                    name=f"noverify-s{seed}", seed=seed, nbytes=16384,
                    packet_size=512, verify=False,
                    host=HostFaultSchedule(bitrot_rate=0.03),
                    max_attempts=6)
                 for seed in range(8)]))
        assert all(not r.silent_corruption for r in results)
        for r in results:
            if not r.completed:
                assert ("CRC mismatch" in r.failure_reason
                        or "storage fault" in r.failure_reason
                        or r.failure_reason)

    def test_scenario_replay_is_deterministic(self, tmp_path):
        """Same scenario, same seed → same damage profile (the whole
        point of seeded chaos: failures replay under a debugger)."""
        sc = ChaosScenario(name="replay", seed=77, nbytes=16384,
                           packet_size=512,
                           host=HostFaultSchedule(torn_write_rate=0.2,
                                                  bitrot_rate=0.1),
                           max_attempts=6)
        a = run_one(str(tmp_path / "a"), sc)
        b = run_one(str(tmp_path / "b"), sc)
        assert a.completed and b.completed
        assert (a.host_stats.torn_writes, a.host_stats.bitrot_writes) \
            == (b.host_stats.torn_writes, b.host_stats.bitrot_writes)
        assert a.packets_demoted == b.packets_demoted

    def test_scenario_dict_round_trip(self):
        sc = ChaosScenario(name="rt", seed=9, drop_rate=0.1,
                           host=HostFaultSchedule(bitrot_rate=0.2),
                           kill_sender_after=12, verify=False)
        assert ChaosScenario.from_dict(sc.to_dict()) == sc


NBYTES = 300_000
PACKET = 1024
NPACKETS = -(-NBYTES // PACKET)
TID = 0x5EED0001


def _config():
    return FobsConfig(packet_size=PACKET, ack_frequency=32,
                      stall_timeout=0.2, stall_abort_after=1.5,
                      receiver_idle_timeout=1.5)


def _spawn_receiver(out, port, attempts=3):
    ready = threading.Event()
    result = {}

    def recv():
        result["recv"] = receive_file(str(out), port, bind="127.0.0.1",
                                      ready=ready, timeout=60.0,
                                      max_attempts=attempts,
                                      config=_config())

    thread = threading.Thread(target=recv, daemon=True)
    thread.start()
    assert ready.wait(10)
    return thread, result


def _send_once(src, port, kill_after=0):
    kill_plan = ({0: KillSwitch(target="sender", after_packets=kill_after)}
                 if kill_after else None)
    return send_file(str(src), "127.0.0.1", port, config=_config(),
                     timeout=60.0, resume=True, max_attempts=1,
                     transfer_id=TID, kill_plan=kill_plan)


def _wait_attempt_boundary():
    # Killed sender -> receiver rides out idle timeout, fails the
    # attempt, compacts the journal and loops back to accept.
    time.sleep(2.5)


def _first_sends(result):
    # Unique packets put on the wire for the first time.  Stall-round
    # retransmissions are timing-dependent on a loaded loopback, so the
    # economics comparison counts distinct payload, not duplicates.
    return result.packets_sent - result.packets_retransmitted


class TestResumeBeatsRestart:
    """Acceptance: a verify-demoted resume re-sends strictly fewer
    packets than a full restart of the same interrupted transfer."""

    def _interrupted_first_attempt(self, tmp_path, port):
        data = np.random.default_rng(12).integers(
            0, 256, NBYTES, dtype=np.uint8).tobytes()
        src = tmp_path / "src.bin"
        src.write_bytes(data)
        out = tmp_path / "out.bin"
        thread, result = _spawn_receiver(out, port)
        first = _send_once(src, port, kill_after=120)
        assert not first.completed
        _wait_attempt_boundary()
        return data, src, out, thread, result, first

    def test_demoted_resume_beats_full_restart(self, tmp_path):
        port = 39431
        data, src, out, thread, result, first = \
            self._interrupted_first_attempt(tmp_path, port)

        # Storage chaos between attempts: corrupt journal-claimed bytes
        # in the .part file (deterministic offsets inside the first 120
        # packets, which attempt 1 delivered).
        part = tmp_path / "out.bin.part"
        assert part.exists()
        blob = bytearray(part.read_bytes())
        for seq in (5, 6, 40):
            blob[seq * PACKET + 11] ^= 0xFF
        part.write_bytes(bytes(blob))

        second = _send_once(src, port)
        thread.join(30)
        assert not thread.is_alive()
        recv = result["recv"]
        assert second.completed and recv.completed
        assert out.read_bytes() == data
        # Verify-on-resume demoted the corrupted chunks...
        assert recv.packets_demoted >= 3
        assert recv.ranges_demoted >= 2  # {5,6} coalesce, {40} is alone
        assert recv.bytes_refetched >= 3 * PACKET
        # ...and the resumed attempt re-sent only holes + demotions:
        # strictly fewer packets than the full object, with real margin.
        assert _first_sends(second) < NPACKETS
        resumed_total = _first_sends(first) + _first_sends(second)

        # Full restart on the SAME seed and kill point: sever the
        # journal so attempt 2 starts from scratch.
        port2 = 39432
        tmp2 = tmp_path / "restart"
        tmp2.mkdir()
        src2 = tmp2 / "src.bin"
        src2.write_bytes(data)
        out2 = tmp2 / "out.bin"
        thread2, result2 = _spawn_receiver(out2, port2)
        first2 = _send_once(src2, port2, kill_after=120)
        assert not first2.completed
        _wait_attempt_boundary()
        for stale in (tmp2 / "out.bin.part", tmp2 / "out.bin.journal"):
            if stale.exists():
                stale.unlink()
        second2 = _send_once(src2, port2)
        thread2.join(30)
        assert second2.completed and result2["recv"].completed
        assert out2.read_bytes() == data
        restart_total = _first_sends(first2) + _first_sends(second2)

        assert resumed_total < restart_total, (
            f"resume ({resumed_total} pkts) did not beat restart "
            f"({restart_total} pkts)")
        # And the restart's second leg sent the whole object again.
        assert _first_sends(second2) >= NPACKETS
