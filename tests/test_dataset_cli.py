"""``repro sync`` / multi-object ``repro fetch``: output discipline.

The contract (docs/DATASET.md): exactly one machine-readable line on
stdout per invocation, diagnostics on stderr, exit codes 0 (ok),
1 (failure), 2 (usage), 3 (verification failure).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.dataset import TreeSpec, trees_equal
from repro.server.cli import main

SYNC_OPTS = ["--chunk-size", "4096", "--object-size", "65536",
             "--pack-threshold", "8192", "--quiet"]


@pytest.fixture
def tree(tmp_path):
    src = str(tmp_path / "tree")
    sizes = {f"d{i % 2}/f{i:02d}": 150 + i * 11 for i in range(20)}
    sizes["big/huge.bin"] = 400_000  # stripes at 64 KiB objects
    sizes["nil"] = 0
    TreeSpec(sizes=sizes, seed=3).generate(src)
    return src


class TestSyncCommand:
    def test_ok_line_and_exit_zero(self, tree, tmp_path, capsys):
        dest = str(tmp_path / "out")
        rc = main(["sync", tree, dest, *SYNC_OPTS])
        out = capsys.readouterr().out
        assert rc == 0
        lines = out.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("sync ok dataset_id=")
        assert "files=22" in lines[0]
        assert "objects_demoted=0" in lines[0]
        assert trees_equal(tree, dest)

    def test_dry_run_is_canonical_json_and_deterministic(
            self, tree, tmp_path, capsys):
        dest = str(tmp_path / "out")
        rc1 = main(["sync", tree, dest, "--dry-run", *SYNC_OPTS])
        first = capsys.readouterr().out
        rc2 = main(["sync", tree, dest, "--dry-run", *SYNC_OPTS])
        second = capsys.readouterr().out
        assert rc1 == rc2 == 0
        assert first == second  # byte-identical (the CI cmp check)
        doc = json.loads(first)
        assert doc["files"] == 22
        assert doc["objects"] == len(doc["schedule"])
        assert not os.path.exists(dest)  # dry-run moves nothing

    def test_missing_source_is_usage_error(self, tmp_path, capsys):
        rc = main(["sync", str(tmp_path / "ghost"), str(tmp_path / "d"),
                   "--quiet"])
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.out == ""  # diagnostics go to stderr
        assert "sync FAILED" in captured.err

    def test_bad_config_is_usage_error(self, tree, tmp_path, capsys):
        rc = main(["sync", tree, str(tmp_path / "d"), "--chunk-size",
                   "4096", "--object-size", "10000", "--quiet"])
        capsys.readouterr()
        assert rc == 2

    def test_resume_after_kill_via_cli(self, tree, tmp_path, capsys):
        from repro.dataset import PackingConfig, sync_tree

        dest = str(tmp_path / "out")
        killed = sync_tree(tree, dest, chunk_size=4096,
                           packing=PackingConfig(object_bytes=65536,
                                                 pack_threshold=8192),
                           kill_after_objects=3)
        assert killed.killed
        rc = main(["sync", tree, dest, *SYNC_OPTS])
        out = capsys.readouterr().out
        assert rc == 0
        assert "objects_skipped=3" in out
        assert trees_equal(tree, dest)

    def test_telemetry_feeds_stats(self, tree, tmp_path, capsys):
        dest = str(tmp_path / "out")
        log = str(tmp_path / "ev.jsonl")
        rc = main(["sync", tree, dest, "--telemetry-out", log, *SYNC_OPTS])
        capsys.readouterr()
        assert rc == 0
        rc = main(["stats", log])
        out = capsys.readouterr().out
        assert rc == 0
        assert "dataset_objects=" in out
        assert "dataset_resumes=0" in out


def _fake_result(name, ok=True, reason=None):
    from repro.runtime.files import FileTransferResult

    return FileTransferResult(
        path=name, nbytes=1000 if ok else 0, duration=0.1,
        throughput_bps=8e4, crc_ok=ok, completed=ok,
        failure_reason=reason, attempts=1)


class TestMultiFetch:
    def test_summary_line_and_exit_zero(self, monkeypatch, tmp_path,
                                        capsys):
        fetched = []
        monkeypatch.setattr(
            "repro.server.cli.fetch_file",
            lambda name, *a, **k: (fetched.append(name),
                                   _fake_result(name))[1])
        rc = main(["fetch", "a.bin", "b.bin", "c.bin", "--port", "1",
                   "--output-dir", str(tmp_path / "objs"), "--quiet"])
        out = capsys.readouterr().out
        assert rc == 0
        assert fetched == ["a.bin", "b.bin", "c.bin"]
        lines = out.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("fetch ok objects=3 nbytes=3000")

    def test_one_verify_failure_exits_three(self, monkeypatch, tmp_path,
                                            capsys):
        results = iter([
            _fake_result("a.bin"),
            _fake_result("b.bin", ok=False,
                         reason="verify failed: corrupt chunks"),
        ])
        monkeypatch.setattr("repro.server.cli.fetch_file",
                            lambda *a, **k: next(results))
        rc = main(["fetch", "a.bin", "b.bin", "c.bin", "--port", "1",
                   "--output-dir", str(tmp_path / "objs"), "--quiet"])
        out = capsys.readouterr().out
        assert rc == 3
        assert "fetch VERIFY_FAILED name=b.bin" in out
        assert "objects=1/3" in out

    def test_plain_failure_exits_one(self, monkeypatch, tmp_path, capsys):
        results = iter([
            _fake_result("a.bin"),
            _fake_result("b.bin", ok=False, reason="connection refused"),
        ])
        monkeypatch.setattr("repro.server.cli.fetch_file",
                            lambda *a, **k: next(results))
        rc = main(["fetch", "a.bin", "b.bin", "--port", "1",
                   "--output-dir", str(tmp_path / "objs"), "--quiet"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "VERIFY_FAILED" not in out


class TestFetchUsage:
    def test_multi_fetch_requires_output_dir(self, capsys):
        rc = main(["fetch", "a.bin", "b.bin", "--port", "1",
                   "--output", "x", "--quiet"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "--output-dir" in captured.err

    def test_multi_fetch_without_any_output(self, capsys):
        rc = main(["fetch", "a.bin", "b.bin", "--port", "1", "--quiet"])
        captured = capsys.readouterr()
        assert rc == 2

    def test_single_fetch_without_output(self, capsys):
        rc = main(["fetch", "a.bin", "--port", "1", "--quiet"])
        captured = capsys.readouterr()
        assert rc == 2
