"""Tests for packet-selection policies, incl. the circular invariant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitmap import PacketBitmap
from repro.core.scheduling import (
    CircularScheduler,
    RandomScheduler,
    SequentialRestartScheduler,
    make_scheduler,
)


class TestCircular:
    def test_first_pass_is_sequential(self):
        acked = PacketBitmap(5)
        sched = CircularScheduler(5)
        order = []
        for _ in range(5):
            seq = sched.next_seq(acked)
            sched.record_sent(seq)
            order.append(seq)
        assert order == [0, 1, 2, 3, 4]

    def test_skips_acked_packets(self):
        acked = PacketBitmap(5)
        acked.mark(1)
        acked.mark(3)
        sched = CircularScheduler(5)
        order = []
        for _ in range(3):
            seq = sched.next_seq(acked)
            sched.record_sent(seq)
            order.append(seq)
        assert order == [0, 2, 4]

    def test_wraps_around(self):
        acked = PacketBitmap(3)
        sched = CircularScheduler(3)
        order = []
        for _ in range(6):
            seq = sched.next_seq(acked)
            sched.record_sent(seq)
            order.append(seq)
        assert order == [0, 1, 2, 0, 1, 2]
        assert sched.rounds >= 1

    def test_returns_none_when_complete(self):
        acked = PacketBitmap(2)
        acked.mark(0)
        acked.mark(1)
        assert CircularScheduler(2).next_seq(acked) is None

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CircularScheduler(0)

    @settings(max_examples=30)
    @given(
        npackets=st.integers(min_value=2, max_value=40),
        data=st.data(),
    )
    def test_property_fairness_invariant(self, npackets, data):
        """max(send_count) - min(send_count) <= 1 over unacked packets:
        no packet is retransmitted the (n+1)st time while another
        unacked packet has been sent fewer than n times."""
        acked = PacketBitmap(npackets)
        sched = CircularScheduler(npackets)
        steps = data.draw(st.integers(min_value=1, max_value=200))
        for _ in range(steps):
            # occasionally ack a random packet (simulates ACK arrival)
            if data.draw(st.booleans()) and not acked.is_complete:
                candidates = acked.missing_indices()
                idx = data.draw(st.integers(0, len(candidates) - 1))
                acked.mark(int(candidates[idx]))
            seq = sched.next_seq(acked)
            if seq is None:
                break
            sched.record_sent(seq)
            unacked = ~np.asarray(acked.array)
            counts = sched.send_count[unacked]
            if counts.size:
                assert counts.max() - counts.min() <= 1


class TestSequentialRestart:
    def test_restarts_from_lowest_unacked(self):
        acked = PacketBitmap(100)
        sched = SequentialRestartScheduler(100, window=4)
        order = []
        for _ in range(10):
            seq = sched.next_seq(acked)
            sched.record_sent(seq)
            order.append(seq)
        # window of 4, nothing acked: cycles 0-3 repeatedly
        assert order == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_advances_past_acked(self):
        acked = PacketBitmap(10)
        sched = SequentialRestartScheduler(10, window=4)
        for _ in range(4):
            sched.record_sent(sched.next_seq(acked))
        for i in range(4):
            acked.mark(i)
        seq = sched.next_seq(acked)
        assert seq == 4

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SequentialRestartScheduler(10, window=0)


class TestRandom:
    def test_only_returns_unacked(self):
        acked = PacketBitmap(10)
        for i in range(9):
            acked.mark(i)
        sched = RandomScheduler(10, np.random.default_rng(0))
        for _ in range(5):
            assert sched.next_seq(acked) == 9

    def test_none_when_complete(self):
        acked = PacketBitmap(2)
        acked.mark(0)
        acked.mark(1)
        assert RandomScheduler(2).next_seq(acked) is None

    def test_deterministic_given_rng(self):
        acked = PacketBitmap(100)
        a = RandomScheduler(100, np.random.default_rng(7))
        b = RandomScheduler(100, np.random.default_rng(7))
        assert [a.next_seq(acked) for _ in range(10)] == [
            b.next_seq(acked) for _ in range(10)
        ]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("circular", CircularScheduler),
        ("sequential_restart", SequentialRestartScheduler),
        ("random", RandomScheduler),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(make_scheduler(name, 10), cls)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo", 10)
