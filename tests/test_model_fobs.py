"""Model-based tests of the sans-IO FOBS pair over an abstract channel.

No simulator here: the sender and receiver state machines are driven
directly through a hypothesis-controlled lossy/duplicating/reordering
channel, checking the protocol's end-to-end invariants under arbitrary
adversarial schedules:

* the transfer always completes while the channel delivers *something*;
* the receiver never double-counts a packet;
* the receiver's bitmap is always a subset relation ahead of the
  sender's view (the sender never believes more than the receiver has);
* waste accounting is exact.
"""

from __future__ import annotations

from collections import deque

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import FobsConfig
from repro.core.receiver import FobsReceiver
from repro.core.sender import FobsSender


def drive(
    nbytes: int,
    config: FobsConfig,
    drop_data,
    drop_acks,
    reorder_window: int,
    max_steps: int = 100_000,
):
    """Run a full transfer through an abstract channel.

    ``drop_data(i)`` / ``drop_acks(i)`` decide the fate of the i-th
    data/ack emission; ``reorder_window`` bounds random-ish reordering
    (a fixed rotation inside the in-flight queue).
    """
    sender = FobsSender(config, nbytes)
    receiver = FobsReceiver(config, nbytes)
    data_channel: deque = deque()
    ack_channel: deque = deque()
    now = 0.0
    data_emissions = 0
    ack_emissions = 0
    completion_sent = False
    completion_delay = 3  # steps between receiver finish and sender hearing

    for step in range(max_steps):
        now += 1e-3
        # sender: one batch + one ack poll (the paper's loop)
        for pkt in sender.next_batch():
            if not drop_data(data_emissions):
                insert_at = min(len(data_channel), reorder_window)
                data_channel.insert(len(data_channel) - insert_at
                                    if len(data_channel) >= insert_at else 0, pkt)
            data_emissions += 1
        if ack_channel:
            sender.on_ack(ack_channel.popleft(), now)
        # channel -> receiver: deliver up to 2 packets per step
        for _ in range(2):
            if not data_channel:
                break
            pkt = data_channel.popleft()
            ack = receiver.on_data(pkt.seq, now)
            # invariant: receiver's count equals unique packets seen
            assert receiver.bitmap.count == receiver.stats.packets_new
            if ack is not None:
                if not drop_acks(ack_emissions):
                    ack_channel.append(ack)
                ack_emissions += 1
        # invariant: sender never believes more than the receiver has
        assert sender.acked.count <= receiver.bitmap.count
        if receiver.complete:
            if not completion_sent:
                completion_sent = True
                completion_at = step + completion_delay
            elif step >= completion_at:
                sender.on_completion(now)
        if sender.complete:
            break
    return sender, receiver


@settings(max_examples=25, deadline=None)
@given(
    npackets=st.integers(min_value=1, max_value=60),
    data=st.data(),
)
def test_property_completes_under_random_loss(npackets, data):
    """Any loss pattern short of total blackout converges."""
    drop_prob = data.draw(st.floats(min_value=0.0, max_value=0.6))
    seed = data.draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    config = FobsConfig(packet_size=100, ack_frequency=data.draw(
        st.integers(min_value=1, max_value=16)))
    sender, receiver = drive(
        nbytes=npackets * 100,
        config=config,
        drop_data=lambda i: rng.random() < drop_prob,
        drop_acks=lambda i: rng.random() < drop_prob,
        reorder_window=data.draw(st.integers(0, 8)),
    )
    assert receiver.complete
    assert sender.complete
    assert receiver.stats.packets_new == npackets
    # waste identity holds exactly
    assert sender.wasted_fraction == (
        (sender.stats.packets_sent - npackets) / npackets
    )


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_property_burst_loss_recovered(data):
    """Contiguous burst losses (queue-overflow shape) are recovered."""
    npackets = 40
    burst_start = data.draw(st.integers(0, 60))
    burst_len = data.draw(st.integers(1, 30))
    config = FobsConfig(packet_size=100, ack_frequency=4)
    sender, receiver = drive(
        nbytes=npackets * 100,
        config=config,
        drop_data=lambda i: burst_start <= i < burst_start + burst_len,
        drop_acks=lambda i: False,
        reorder_window=0,
    )
    assert receiver.complete and sender.complete


def test_zero_loss_sends_each_packet_close_to_once():
    """With a perfect channel and frequent ACKs, waste stays small
    (only the completion-lag tail)."""
    config = FobsConfig(packet_size=100, ack_frequency=2)
    sender, receiver = drive(
        nbytes=50 * 100,
        config=config,
        drop_data=lambda i: False,
        drop_acks=lambda i: False,
        reorder_window=0,
    )
    assert receiver.complete
    assert sender.wasted_fraction < 0.5


def test_all_acks_lost_still_completes_via_completion_signal():
    """Even with every ACK lost, the circular sweep covers the object
    and the TCP completion signal (out of band) ends the transfer."""
    config = FobsConfig(packet_size=100, ack_frequency=1)
    sender, receiver = drive(
        nbytes=20 * 100,
        config=config,
        drop_data=lambda i: False,
        drop_acks=lambda i: True,
        reorder_window=0,
    )
    assert receiver.complete
    assert sender.complete
    # sender learned nothing from ACKs, so it kept resending
    assert sender.stats.retransmissions > 0
