"""Tests for the SABUL baseline."""

import pytest

from repro.sabul import SabulConfig, run_sabul_transfer

from _support import tiny_path


class TestSabul:
    def test_clean_path_completes(self):
        net = tiny_path()
        res = run_sabul_transfer(net, 500_000)
        assert res.completed
        assert res.loss_reports == 0

    def test_rate_ramps_toward_peak_on_clean_path(self):
        net = tiny_path()
        cfg = SabulConfig(initial_rate_bps=20e6, peak_rate_bps=100e6)
        res = run_sabul_transfer(net, 2_000_000, cfg)
        assert res.completed
        assert res.final_rate_bps > 20e6

    def test_loss_triggers_reports_and_backoff(self):
        net = tiny_path(loss_rate=0.05, seed=1)
        cfg = SabulConfig(initial_rate_bps=80e6, peak_rate_bps=100e6)
        res = run_sabul_transfer(net, 1_000_000, cfg)
        assert res.completed
        assert res.loss_reports > 0
        assert res.final_rate_bps < 100e6

    def test_loss_means_congestion_assumption_costs_bandwidth(self):
        """SABUL slows on non-congestion loss; FOBS does not — the
        paper's core distinction between the two protocols."""
        from repro.core import run_fobs_transfer
        from _support import quick_config
        sabul = run_sabul_transfer(tiny_path(loss_rate=0.02, seed=2), 1_000_000,
                                   SabulConfig(initial_rate_bps=90e6))
        fobs = run_fobs_transfer(tiny_path(loss_rate=0.02, seed=2), 1_000_000,
                                 quick_config())
        assert fobs.throughput_bps > sabul.throughput_bps

    def test_retransmissions_cover_losses(self):
        net = tiny_path(loss_rate=0.1, seed=3)
        res = run_sabul_transfer(net, 300_000, time_limit=300.0)
        assert res.completed
        assert res.packets_sent > res.npackets

    def test_npackets_validation(self):
        with pytest.raises(ValueError):
            SabulConfig().npackets(-5)
