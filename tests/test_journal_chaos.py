"""Journal robustness under storage chaos: crash-atomic compaction,
durable demotion, and the whole-file flip property.

``tests/test_journal.py`` proves record-level damage is contained;
this file attacks the two operations added for digest-driven repair —
``compact()`` (now rewrite-to-temp + fsync + rename) and ``demote()``
(verify-pass fallout must survive a crash) — plus the global version
of the fabrication property: flip *any* single byte anywhere in a
journal file and replay either refuses the file or recovers a subset
of the true bitmap.  It must never fabricate a received packet.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.journal import (
    HEADER_BYTES,
    JournalCorrupt,
    ReceiverJournal,
    replay_journal,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

NPACKETS = 64
TID = 0xDEADBEEF
PACKET_SIZE = 1000
TOTAL_BYTES = NPACKETS * PACKET_SIZE


class _Killed(BaseException):
    """Raised by the crash hook to model a kill -9 at an exact point."""


def make_journal(tmp_path, **kwargs) -> ReceiverJournal:
    return ReceiverJournal.create(
        str(tmp_path / "j.journal"), TID, TOTAL_BYTES, PACKET_SIZE,
        flush_every=1, **kwargs)


class TestCompactionCrashAtomicity:
    def populate(self, journal):
        journal.record_range(0, 10)
        journal.record_range(20, 5)
        journal.record_range(40, 8)
        return journal.bitmap.array.copy()

    @pytest.mark.parametrize("phase", ["compact:tmp-synced",
                                       "compact:replaced"])
    def test_kill_at_phase_leaves_one_valid_journal(self, tmp_path, phase):
        """A kill before the rename keeps the old journal; a kill after
        it keeps the new one.  Either way replay sees the same bitmap —
        never a truncated half-rewrite."""
        journal = make_journal(tmp_path)
        expected = self.populate(journal)

        def hook(p):
            if p == phase:
                raise _Killed(p)

        journal.crash_hook = hook
        with pytest.raises(_Killed):
            journal.compact()
        journal.simulate_crash()
        replay = replay_journal(journal.path)
        assert np.array_equal(replay.bitmap.array, expected)
        assert replay.records_dropped == 0

    def test_kill_mid_compact_leaves_no_temp_garbage_behind_resume(
        self, tmp_path
    ):
        """The .compact temp file never shadows the journal: resume
        reads ``path`` itself, which is always one valid journal."""
        journal = make_journal(tmp_path)
        expected = self.populate(journal)
        journal.crash_hook = lambda p: (_ for _ in ()).throw(_Killed(p))
        with pytest.raises(_Killed):
            journal.compact()
        journal.simulate_crash()
        # Whatever temp state was left, replaying the canonical path is
        # exact.
        replay = replay_journal(journal.path)
        assert np.array_equal(replay.bitmap.array, expected)

    def test_compact_survives_and_backs_off_on_enospc(self, tmp_path):
        """An OSError during compaction propagates but the journal file
        stays valid and the threshold backs off."""
        journal = make_journal(tmp_path)
        expected = self.populate(journal)
        before = journal.compact_threshold

        def hook(p):
            if p == "compact:tmp-synced":
                raise OSError(28, "injected ENOSPC")

        journal.crash_hook = hook
        with pytest.raises(OSError):
            journal.compact()
        assert journal.compact_threshold > before
        journal.crash_hook = None
        journal.close()
        replay = replay_journal(journal.path)
        assert np.array_equal(replay.bitmap.array, expected)


class TestDemotion:
    def test_demote_is_durable_across_crash(self, tmp_path):
        """Demoted bits stay demoted after a kill: the next resume must
        re-fetch the corrupt ranges, not resurrect them."""
        journal = make_journal(tmp_path)
        journal.record_range(0, 32)
        assert journal.demote([3, 4, 5, 20]) == 4
        journal.simulate_crash()  # kill right after the verify pass
        replay = replay_journal(journal.path)
        assert not replay.bitmap.array[[3, 4, 5, 20]].any()
        assert replay.bitmap.array[[0, 1, 2, 6, 19, 21, 31]].all()

    def test_demote_idempotent(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_range(0, 16)
        assert journal.demote([2, 3]) == 2
        assert journal.demote([2, 3]) == 0
        assert journal.demote([50]) == 0  # never-received: nothing to do
        journal.close()


class TestWholeFileFlipProperty:
    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, NPACKETS - 1), st.integers(1, 8)).map(
                lambda rc: (rc[0], min(rc[1], NPACKETS - rc[0]))),
            min_size=1, max_size=12),
        offset_frac=st.floats(0.0, 1.0, exclude_max=True),
        mask=st.integers(1, 255),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_single_byte_flip_never_fabricates(
        self, tmp_path_factory, ranges, offset_frac, mask
    ):
        """Flip ANY byte — header, record, anywhere.  Replay either
        raises ``JournalCorrupt`` or recovers a strict subset of the
        true bitmap.  A fabricated packet would resume a hole as
        'received' and corrupt the object; that outcome must be
        unreachable from single-byte damage."""
        tmp = tmp_path_factory.mktemp("journal")
        path = str(tmp / "j.journal")
        journal = ReceiverJournal.create(path, TID, TOTAL_BYTES, PACKET_SIZE,
                                         flush_every=1)
        for start, count in ranges:
            journal.record_range(start, count)
        truth = journal.bitmap.array.copy()
        journal.close()
        blob = bytearray(open(path, "rb").read())
        blob[int(offset_frac * len(blob))] ^= mask
        flipped = str(tmp / "flipped.journal")
        with open(flipped, "wb") as fh:
            fh.write(bytes(blob))
        try:
            replay = replay_journal(flipped)
        except JournalCorrupt:
            return  # refused outright: safe
        fabricated = replay.bitmap.array & ~truth
        assert not fabricated.any(), "flip fabricated a received packet"

    @given(
        mask=st.integers(1, 255),
        header_byte=st.integers(0, HEADER_BYTES - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_header_flips_refused_or_harmless(
        self, tmp_path_factory, mask, header_byte
    ):
        """Header damage in particular must never pass an ``expect``
        check against the live transfer's identity."""
        from repro.core.journal import JournalHeader

        tmp = tmp_path_factory.mktemp("journal")
        path = str(tmp / "j.journal")
        journal = ReceiverJournal.create(path, TID, TOTAL_BYTES, PACKET_SIZE,
                                         flush_every=1)
        journal.record_range(0, 8)
        journal.close()
        blob = bytearray(open(path, "rb").read())
        blob[header_byte] ^= mask
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        expect = JournalHeader(TID, TOTAL_BYTES, PACKET_SIZE)
        with pytest.raises(JournalCorrupt):
            replay_journal(path, expect=expect)
