"""Tests for the UDP socket abstraction and the TCP raw conduit."""

import pytest

from repro.simnet.link import DelayLink
from repro.simnet.node import Host
from repro.simnet.packet import Address
from repro.simnet.sockets import RawConduit, UdpSocket


def pair(sim):
    a, b = Host(sim, "a"), Host(sim, "b")
    ab = DelayLink(sim, "a->b", prop_delay=0.001)
    ba = DelayLink(sim, "b->a", prop_delay=0.001)
    ab.connect(b)
    ba.connect(a)
    a.set_default_route(ab)
    b.set_default_route(ba)
    return a, b


class TestUdpSocket:
    def test_send_and_poll(self, sim):
        a, b = pair(sim)
        tx = UdpSocket(a, 100)
        rx = UdpSocket(b, 200)
        tx.sendto("hello", 64, Address("b", 200))
        sim.run()
        frame = rx.poll()
        assert frame.payload == "hello"
        assert rx.poll() is None

    def test_buffer_overflow_drops(self, sim):
        a, b = pair(sim)
        tx = UdpSocket(a, 100)
        rx = UdpSocket(b, 200, recv_buffer_bytes=200)
        for _ in range(5):
            tx.sendto(None, 64, Address("b", 200))  # 92 B wire each
        sim.run()
        assert rx.datagrams_received == 2
        assert rx.datagrams_dropped == 3

    def test_poll_frees_buffer_space(self, sim):
        a, b = pair(sim)
        tx = UdpSocket(a, 100)
        rx = UdpSocket(b, 200, recv_buffer_bytes=100)
        tx.sendto(1, 64, Address("b", 200))
        sim.run()
        assert rx.poll() is not None
        tx.sendto(2, 64, Address("b", 200))
        sim.run()
        assert rx.poll().payload == 2

    def test_on_readable_fires_on_empty_to_nonempty(self, sim):
        a, b = pair(sim)
        tx = UdpSocket(a, 100)
        rx = UdpSocket(b, 200)
        wakes = []
        rx.on_readable = lambda: wakes.append(sim.now)
        tx.sendto(1, 64, Address("b", 200))
        tx.sendto(2, 64, Address("b", 200))
        sim.run()
        # both arrive at the same instant; only the 0->1 edge wakes
        assert len(wakes) == 1

    def test_readable_count(self, sim):
        a, b = pair(sim)
        tx = UdpSocket(a, 100)
        rx = UdpSocket(b, 200)
        tx.sendto(1, 64, Address("b", 200))
        tx.sendto(2, 64, Address("b", 200))
        sim.run()
        assert rx.readable == 2

    def test_close_unbinds_and_clears(self, sim):
        a, b = pair(sim)
        tx = UdpSocket(a, 100)
        rx = UdpSocket(b, 200)
        tx.sendto(1, 64, Address("b", 200))
        sim.run()
        rx.close()
        assert rx.poll() is None
        tx.sendto(2, 64, Address("b", 200))
        sim.run()
        assert b.frames_unclaimed == 1

    def test_counters(self, sim):
        a, b = pair(sim)
        tx = UdpSocket(a, 100)
        rx = UdpSocket(b, 200)
        tx.sendto(1, 64, Address("b", 200))
        sim.run()
        assert tx.datagrams_sent == 1
        assert rx.datagrams_received == 1

    def test_can_send_on_delay_link_always_true(self, sim):
        a, _b = pair(sim)
        tx = UdpSocket(a, 100)
        assert tx.can_send(1000, Address("b", 200))
        assert tx.send_wait_hint(1000, Address("b", 200)) == 0.0

    def test_invalid_buffer_rejected(self, sim):
        a, _ = pair(sim)
        with pytest.raises(ValueError):
            UdpSocket(a, 1, recv_buffer_bytes=0)


class TestRawConduit:
    def test_segments_delivered_to_callback(self, sim):
        a, b = pair(sim)
        got = []
        RawConduit(b, 300, got.append)
        conduit_a = RawConduit(a, 300, lambda f: None)
        from repro.simnet.packet import tcp_frame
        conduit_a.send(tcp_frame(Address("a", 300), Address("b", 300), "seg", 100))
        sim.run()
        assert len(got) == 1
        assert got[0].payload == "seg"

    def test_close_unbinds(self, sim):
        a, b = pair(sim)
        c = RawConduit(b, 300, lambda f: None)
        c.close()
        RawConduit(b, 300, lambda f: None)  # rebind works
