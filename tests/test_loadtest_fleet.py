"""End-to-end tests for the load-test fleet harness.

Covers the population sampler, the star fleet topology, the scenario
runner (including the determinism contract and the resume storm), the
SLO computation from synthetic event streams, and the ``repro
loadtest`` CLI surface.  Scenario runs here use shrunken fleets — the
full-size scenarios live in ``benchmarks/test_loadtest.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.loadtest import (
    CLIENT_CLASSES,
    DEFAULT_POPULATION,
    Population,
    SCENARIOS,
    build_fleet_network,
    compute_slo_report,
    render_slo_report,
    run_scenario,
)
from repro.server.cli import main as repro_main
from repro.telemetry import (
    EV_ADMISSION,
    EV_TRANSFER_END,
    EV_TRANSFER_START,
    Event,
)


class TestPopulation:
    def test_sampling_is_seed_deterministic(self):
        a = DEFAULT_POPULATION.sample(50, np.random.default_rng(4))
        b = DEFAULT_POPULATION.sample(50, np.random.default_rng(4))
        assert [(c.klass.name, c.object_bytes) for c in a] == \
               [(c.klass.name, c.object_bytes) for c in b]

    def test_mix_weights_respected(self):
        pop = Population.of(short_haul=9.0, satellite=1.0)
        clients = pop.sample(2000, np.random.default_rng(0))
        share = sum(1 for c in clients
                    if c.klass.name == "short_haul") / len(clients)
        assert share == pytest.approx(0.9, abs=0.03)

    def test_object_sizes_clamped(self):
        klass = CLIENT_CLASSES["short_haul"]
        rng = np.random.default_rng(1)
        sizes = [klass.sample_object_bytes(rng) for _ in range(500)]
        assert all(klass.min_bytes <= s <= klass.max_bytes for s in sizes)


class TestFleetNetwork:
    def test_star_topology_and_round_robin(self):
        clients = DEFAULT_POPULATION.sample(24, np.random.default_rng(2))
        fleet = build_fleet_network(clients, seed=3, hosts_per_class=2)
        assert "server" in fleet.net.hosts
        for name in {c.klass.name for c in clients}:
            assert len(fleet.class_hosts[name]) == 2
        # Clients of one class spread round-robin over its edge hosts.
        sat = [c for c in clients if c.klass.name == "satellite"]
        if len(sat) >= 2:
            dsts = {fleet.dst_for(c) for c in sat}
            assert len(dsts) >= 2


class TestScenarios:
    def test_vocabulary_complete(self):
        assert {"smoke", "steady", "diurnal", "overload", "flash-crowd",
                "resume-storm"} <= set(SCENARIOS)
        for spec in SCENARIOS.values():
            assert spec.description

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("no-such-thing")

    def test_smoke_report_accounting(self):
        res = run_scenario("smoke", seed=1, clients=12)
        r = res.report
        assert r["offered"] == 12
        assert r["clients"] == 12
        adm = r["admission"]
        assert adm["admitted"] + adm["rejected"] == 12
        assert r["transfers"]["completed"] <= adm["admitted"]
        assert r["transfers"]["completed"] + r["transfers"]["failed"] \
            + r["transfers"]["timed_out"] == adm["admitted"]
        assert r["goodput"]["bytes_delivered"] > 0
        assert r["telemetry_truncated"] is False
        assert r["slo_schema"] == 1
        # Every class that completed work appears in the rollup.
        for stats in r["goodput"]["per_class"].values():
            assert stats["offered"] >= stats["completed"]

    def test_flash_crowd_byte_identical_reports(self):
        a = run_scenario("flash-crowd", seed=7, clients=40).render()
        b = run_scenario("flash-crowd", seed=7, clients=40).render()
        assert a == b
        json.loads(a)  # canonical rendering is valid JSON

    def test_resume_storm_recovers(self):
        res = run_scenario("resume-storm", seed=2, clients=60)
        r = res.report
        storm = r["resume_storm"]
        assert storm is not None
        assert storm["killed_at"] == pytest.approx(10.0)
        assert storm["restarted_at"] == pytest.approx(12.0)
        assert storm["storm_size"] >= 1
        assert r["admission"]["requeues"] >= 1
        # Recovery: the storm resolved and every client finished.
        assert "recovered_at" in storm
        assert storm["recovery_s"] > 0.0
        assert r["transfers"]["completed"] == r["offered"]
        assert r["transfers"]["failed"] == 0


class TestSloFromSyntheticEvents:
    def _ev(self, time, kind, tid, **fields):
        return Event(time=time, kind=kind, transfer_id=tid, src="test",
                     fields=fields)

    def test_admission_and_wait_accounting(self):
        events = [
            self._ev(0.0, EV_ADMISSION, 1, action="admit", klass="a"),
            self._ev(0.0, EV_ADMISSION, 2, action="queue", klass="a"),
            self._ev(0.0, EV_ADMISSION, 3, action="reject", klass="b"),
            self._ev(2.0, EV_ADMISSION, 2, action="admit", klass="a"),
            self._ev(0.0, EV_TRANSFER_START, 1, nbytes=1000),
            self._ev(1.0, EV_TRANSFER_END, 1, completed=True, failed=False,
                     timed_out=False, duration=1.0, throughput_bps=8000.0,
                     wasted_fraction=0.0),
            self._ev(2.0, EV_TRANSFER_START, 2, nbytes=1000),
            self._ev(3.0, EV_TRANSFER_END, 2, completed=True, failed=False,
                     timed_out=False, duration=1.0, throughput_bps=8000.0,
                     wasted_fraction=0.0),
        ]
        r = compute_slo_report(events, scenario="synthetic", seed=0)
        assert r["offered"] == 3
        assert r["admission"]["admitted"] == 2
        assert r["admission"]["queued"] == 1
        assert r["admission"]["rejected"] == 1
        assert r["admission"]["reject_rate"] == pytest.approx(1 / 3)
        # Only transfer 2 waited (2 s); the histogram answer is within
        # one geometric bin of exact.
        assert r["queue_wait_s"]["share_queued"] == pytest.approx(1 / 3)
        assert r["queue_wait_s"]["p50"] == pytest.approx(2.0, rel=0.2)
        assert r["transfers"]["completed"] == 2
        assert r["goodput"]["bytes_delivered"] == 2000
        # Goodput is client-perceived: transfer 2's 2 s queue wait
        # counts, so jain([8000, 8000/3]) = 0.8 exactly.
        assert r["fairness"]["jain_transfers"] == pytest.approx(0.8)
        assert r["resume_storm"] is None

    def test_crashed_attempt_not_counted_completed(self):
        events = [
            self._ev(0.0, EV_TRANSFER_START, 1, nbytes=1000),
            # Crash artifact: bytes all landed but the handshake died.
            self._ev(1.0, EV_TRANSFER_END, 1, completed=True, failed=True,
                     timed_out=False, duration=1.0, throughput_bps=0.0),
        ]
        r = compute_slo_report(events)
        assert r["transfers"]["completed"] == 0
        assert r["transfers"]["failed"] == 1
        assert r["fairness"]["jain_transfers"] is None

    def test_empty_stream(self):
        r = compute_slo_report([])
        assert r["offered"] == 0
        assert r["admission"]["reject_rate"] == 0.0
        assert r["fairness"]["jain_transfers"] is None
        json.loads(render_slo_report(r))

    def test_render_rounds_and_sorts(self):
        r = compute_slo_report([], scenario="x", seed=1)
        text = render_slo_report(r)
        assert text == render_slo_report(json.loads(text))
        assert "1e-" not in text.split("seed")[0]  # rounded floats


class TestCli:
    def test_list_scenarios(self, capsys):
        assert repro_main(["loadtest", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_missing_scenario_is_usage_error(self, capsys):
        assert repro_main(["loadtest"]) == 2
        assert "scenario name required" in capsys.readouterr().err

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert repro_main(["loadtest", "bogus", "--quiet"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_smoke_emits_schema_valid_json(self, capsys):
        assert repro_main(["loadtest", "smoke", "--seed", "1",
                           "--clients", "8", "--quiet"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scenario"] == "smoke"
        assert report["seed"] == 1
        assert report["offered"] == 8
        for key in ("admission", "queue_wait_s", "transfers", "goodput",
                    "fairness", "sim", "slo_schema"):
            assert key in report

    def test_telemetry_out_records_jsonl(self, tmp_path, capsys):
        log = tmp_path / "fleet.jsonl"
        assert repro_main(["loadtest", "smoke", "--seed", "1",
                           "--clients", "6", "--quiet",
                           "--telemetry-out", str(log)]) == 0
        capsys.readouterr()
        lines = log.read_text().strip().splitlines()
        assert lines
        kinds = {json.loads(line).get("kind") for line in lines
                 if "kind" in json.loads(line)}
        assert "admission" in kinds
