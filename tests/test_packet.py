"""Tests for frame construction and wire-size accounting."""

import pytest

from repro.simnet.packet import (
    Address,
    Frame,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    tcp_frame,
    udp_frame,
)

A = Address("hosta", 1000)
B = Address("hostb", 2000)


class TestAddress:
    def test_str(self):
        assert str(A) == "hosta:1000"

    def test_equality_and_hash(self):
        assert Address("h", 1) == Address("h", 1)
        assert hash(Address("h", 1)) == hash(Address("h", 1))
        assert Address("h", 1) != Address("h", 2)


class TestFrame:
    def test_udp_frame_adds_header_overhead(self):
        f = udp_frame(A, B, payload="x", payload_bytes=1000)
        assert f.size_bytes == 1000 + UDP_HEADER_BYTES
        assert f.proto == "udp"

    def test_tcp_frame_adds_header_and_options(self):
        f = tcp_frame(A, B, payload="seg", payload_bytes=1460, option_bytes=12)
        assert f.size_bytes == 1460 + TCP_HEADER_BYTES + 12

    def test_tcp_pure_ack_is_header_only(self):
        f = tcp_frame(A, B, payload="ack", payload_bytes=0)
        assert f.size_bytes == TCP_HEADER_BYTES

    def test_frame_ids_are_unique(self):
        f1 = udp_frame(A, B, None, 10)
        f2 = udp_frame(A, B, None, 10)
        assert f1.frame_id != f2.frame_id

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Frame(src=A, dst=B, proto="udp", size_bytes=0)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            Frame(src=A, dst=B, proto="icmp", size_bytes=10)
