"""Tests for the satellite preset and FOBS rate pacing."""

import pytest

import repro.simnet as sn
from repro.core import FobsConfig, run_fobs_transfer
from repro.tcp import TcpOptions, run_bulk_transfer

from _support import quick_config, tiny_path


class TestSatellitePath:
    def test_rtt_is_geostationary(self):
        net = sn.satellite_path()
        assert 0.5 < net.spec.rtt() < 0.6

    def test_unscaled_tcp_is_unusable(self):
        """Related work [10]: 64 KiB / 560 ms ~ 2% of a 45 Mb/s link."""
        opts = TcpOptions(window_scaling=False)
        res = run_bulk_transfer(sn.satellite_path(), 2_000_000,
                                sender_options=opts, receiver_options=opts,
                                time_limit=120.0)
        assert res.completed
        assert res.percent_of_bottleneck < 5

    @pytest.mark.slow
    def test_fobs_indifferent_to_rtt(self):
        """FOBS's object-sized window doesn't care about 560 ms RTT."""
        stats = run_fobs_transfer(sn.satellite_path(), 10_000_000,
                                  FobsConfig(ack_frequency=64),
                                  time_limit=120.0)
        assert stats.completed
        assert stats.percent_of_bottleneck > 80

    @pytest.mark.slow
    def test_fobs_vs_tcp_gap_is_extreme_on_satellite(self):
        fobs = run_fobs_transfer(sn.satellite_path(), 5_000_000,
                                 FobsConfig(ack_frequency=64), time_limit=120.0)
        opts = TcpOptions(window_scaling=False)
        tcp = run_bulk_transfer(sn.satellite_path(), 5_000_000,
                                sender_options=opts, receiver_options=opts,
                                time_limit=120.0)
        assert fobs.percent_of_bottleneck > 10 * tcp.percent_of_bottleneck


class TestPacing:
    def test_rate_cap_honoured(self):
        net = tiny_path()  # 100 Mb/s link
        stats = run_fobs_transfer(
            net, 1_000_000, quick_config(send_rate_bps=20e6))
        assert stats.completed
        # goodput below the cap (wire rate is the capped quantity)
        assert stats.throughput_bps < 20e6

    def test_uncapped_faster_than_capped(self):
        capped = run_fobs_transfer(tiny_path(), 1_000_000,
                                   quick_config(send_rate_bps=10e6))
        free = run_fobs_transfer(tiny_path(), 1_000_000, quick_config())
        assert free.duration < 0.3 * capped.duration

    def test_cap_above_link_rate_is_noop(self):
        capped = run_fobs_transfer(tiny_path(), 1_000_000,
                                   quick_config(send_rate_bps=1e9))
        free = run_fobs_transfer(tiny_path(), 1_000_000, quick_config())
        assert capped.duration == pytest.approx(free.duration, rel=0.05)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FobsConfig(send_rate_bps=0)
