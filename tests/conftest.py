"""Shared fixtures for the test suite.

Tests run tiny transfers (tens to hundreds of KB) — enough to exercise
every code path in seconds; the benchmarks run the paper-scale 40 MB
workloads.  Reusable helpers live in tests/_support.py.
"""

from __future__ import annotations

import pytest

from repro.simnet import topology
from repro.simnet.engine import Simulator
from repro.simnet.topology import Network

try:
    from hypothesis import settings as _hypothesis_settings

    # print_blob=True makes a failing property print its
    # @reproduce_failure blob in the CI log, so a stall/recovery
    # regression found by a random seed can be replayed exactly.
    _hypothesis_settings.register_profile("repro", print_blob=True)
    _hypothesis_settings.load_profile("repro")
except ImportError:  # hypothesis is an optional test dependency
    pass


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def short_net() -> Network:
    return topology.short_haul(seed=0)


@pytest.fixture
def long_net() -> Network:
    return topology.long_haul(seed=0)
