"""Server crash + restart: journaled clients resume, no bitmap bleed.

The ISSUE's real-socket acceptance criterion: N clients fetch from one
server; the server is killed mid-flight (deterministic KillSwitch on
its shared send pump), then restarted on the same port; every client
completes byte-correct through the RESUME handshake, at least one of
them salvaging journaled packets instead of restarting at byte zero —
and no packet of one transfer ever lands in another's object.
"""

import threading

import numpy as np
import pytest

from repro.core.config import FobsConfig
from repro.runtime.supervisor import RetryPolicy
from repro.server import ObjectServer, fetch_file
from repro.simnet import KillSwitch

pytestmark = pytest.mark.loopback

CONFIG = FobsConfig(ack_frequency=16)


def start_server(root, port=0, kill=None):
    server = ObjectServer(str(root), port=port, bind="127.0.0.1",
                          config=CONFIG, max_active=4, kill=kill)
    ready = threading.Event()
    holder = {}

    def run():
        holder["snapshot"] = server.serve_forever(ready)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(5), "server failed to start"
    return server, thread, holder


class TestKillAndRestart:
    def test_clients_resume_after_server_restart(self, tmp_path):
        root = tmp_path / "objects"
        root.mkdir()
        out = tmp_path / "out"
        out.mkdir()
        rng = np.random.default_rng(21)
        blobs = {}
        for name in ("x.bin", "y.bin"):
            blobs[name] = rng.integers(
                0, 256, size=400_000, dtype=np.uint8).tobytes()
            (root / name).write_bytes(blobs[name])

        # Die after 250 shared-pump DATA packets — mid-flight for both.
        kill = KillSwitch(target="sender", after_packets=250)
        server1, thread1, _ = start_server(root, kill=kill)
        port = server1.port

        results = {}

        def fetch(name):
            results[name] = fetch_file(
                name, "127.0.0.1", port, str(out / name), config=CONFIG,
                timeout=30,
                policy=RetryPolicy(max_attempts=8, backoff_base=0.3,
                                   seed=hash(name) & 0xFFFF))

        clients = [threading.Thread(target=fetch, args=(n,))
                   for n in blobs]
        for c in clients:
            c.start()

        # The kill fires from inside the send pump; the daemon must die
        # abruptly (journals lose unflushed state, sockets just close).
        thread1.join(timeout=30)
        assert not thread1.is_alive()
        assert kill.fired
        assert server1.crashed

        # Restart on the same TCP port while clients are backing off.
        server2, thread2, _ = start_server(root, port=port)
        for c in clients:
            c.join(timeout=60)
        server2.request_drain()
        thread2.join(timeout=30)

        for name, blob in blobs.items():
            result = results[name]
            assert result.completed, (name, result.failure_reason)
            assert result.attempts >= 2  # the crash cost everyone a retry
            # No cross-transfer bitmap bleed: every byte is this
            # object's, in place, nothing from the other session.
            assert (out / name).read_bytes() == blob
        assert any(r.resumed_packets > 0 for r in results.values()), \
            "no client salvaged journaled packets on resume"

    def test_fresh_fetch_unaffected_by_unrelated_journals(self, tmp_path):
        """A second, different fetch to the same output dir must not
        pick up the journal of a finished transfer."""
        root = tmp_path / "objects"
        root.mkdir()
        out = tmp_path / "out"
        out.mkdir()
        rng = np.random.default_rng(22)
        first = rng.integers(0, 256, size=200_000, dtype=np.uint8).tobytes()
        second = rng.integers(0, 256, size=250_000, dtype=np.uint8).tobytes()
        (root / "one.bin").write_bytes(first)
        (root / "two.bin").write_bytes(second)

        server, thread, _ = start_server(root)
        try:
            r1 = fetch_file("one.bin", "127.0.0.1", server.port,
                            str(out / "o.bin"), config=CONFIG, timeout=30)
            r2 = fetch_file("two.bin", "127.0.0.1", server.port,
                            str(out / "o.bin"), config=CONFIG, timeout=30)
        finally:
            server.request_drain()
            thread.join(timeout=30)
        assert r1.completed and r2.completed
        assert r1.resumed_packets == 0 and r2.resumed_packets == 0
        assert (out / "o.bin").read_bytes() == second
