"""End-to-end dataset sync: equality, resume-after-kill, backends."""

from __future__ import annotations

import os

import pytest

from repro.dataset import (
    JOURNAL_NAME,
    PackingConfig,
    SchedulerConfig,
    TreeSpec,
    mixed_tree_spec,
    plan_objects,
    run_sim_dataset,
    run_sim_naive,
    run_sim_resume,
    scan_tree,
    sync_tree,
    trees_equal,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

CHUNK = 4096
PACKING = PackingConfig(object_bytes=16 * CHUNK, pack_threshold=2 * CHUNK)


def small_mixed_spec(seed=0):
    """Small files + two files that stripe into >4 objects each."""
    sizes = {f"small/s{i:03d}": 100 + i * 7 for i in range(30)}
    sizes["mid/whole.bin"] = 10 * CHUNK
    sizes["big/a.blob"] = 80 * CHUNK + 100   # 6 stripes
    sizes["big/b.blob"] = 70 * CHUNK         # 5 stripes
    sizes["hollow/zero"] = 0
    return TreeSpec(sizes=sizes, dirs=("hollow/empty-dir",), seed=seed)


@pytest.fixture
def tree(tmp_path):
    src = str(tmp_path / "src")
    small_mixed_spec().generate(src)
    return src


class TestFullSync:
    def test_tree_equality_and_mtimes(self, tree, tmp_path):
        dest = str(tmp_path / "dest")
        result = sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING)
        assert result.completed and not result.failure_reason
        assert result.verify_failures == 0
        assert trees_equal(tree, dest)
        assert not os.path.exists(os.path.join(dest, JOURNAL_NAME))
        # mtimes carried over, empty dirs materialized
        m = scan_tree(tree, CHUNK)
        for entry in m.entries:
            assert os.stat(os.path.join(dest, entry.path)).st_mtime_ns \
                == entry.mtime_ns
        assert os.path.isdir(os.path.join(dest, "hollow", "empty-dir"))

    def test_striped_files_exceed_four_objects(self, tree):
        plan = plan_objects(scan_tree(tree, CHUNK), PACKING)
        stripes = {}
        for obj in plan.objects:
            if obj.nstripes > 1:
                stripes[obj.members[0].path] = obj.nstripes
        assert stripes["big/a.blob"] > 4
        assert stripes["big/b.blob"] > 4

    def test_accounting_adds_up(self, tree, tmp_path):
        result = sync_tree(tree, str(tmp_path / "d"), chunk_size=CHUNK,
                           packing=PACKING)
        m = scan_tree(tree, CHUNK)
        assert result.bytes_transferred == m.total_bytes
        assert result.nobjects == result.objects_transferred
        assert result.wire_bytes > result.bytes_transferred  # framing
        assert result.packets_sent > 0

    @pytest.mark.parametrize("policy", ["layout", "fifo", "random"])
    def test_all_policies_produce_equal_trees(self, tree, tmp_path, policy):
        dest = str(tmp_path / policy)
        result = sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING,
                           scheduler=SchedulerConfig(policy=policy, seed=9))
        assert result.completed and trees_equal(tree, dest)

    def test_missing_source_fails_cleanly(self, tmp_path):
        result = sync_tree(str(tmp_path / "nope"), str(tmp_path / "d"))
        assert not result.completed
        assert "NotADirectoryError" in (result.failure_reason or "")


class TestResume:
    def test_kill_then_resume_is_lossless(self, tree, tmp_path):
        dest = str(tmp_path / "dest")
        killed = sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING,
                           kill_after_objects=4)
        assert killed.killed and not killed.completed
        assert killed.objects_transferred == 4
        resumed = sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING)
        assert resumed.completed and resumed.resumed
        assert resumed.objects_skipped == 4
        assert resumed.objects_demoted == 0
        # strictly less re-sent than a fresh run would send
        assert resumed.objects_transferred == killed.nobjects - 4
        assert trees_equal(tree, dest)

    def test_resume_audit_demotes_corrupted_object(self, tree, tmp_path):
        dest = str(tmp_path / "dest")
        sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING,
                  kill_after_objects=8)
        # Corrupt one byte of a file the killed run already landed.
        order = plan_objects(scan_tree(tree, CHUNK), PACKING)
        victim = None
        for obj in order.objects[:8]:
            victim = obj.members[0].path
            break
        with open(os.path.join(dest, victim), "r+b") as fh:
            fh.seek(0)
            byte = fh.read(1)
            fh.seek(0)
            fh.write(bytes([byte[0] ^ 0xFF]))
        resumed = sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING)
        assert resumed.completed
        assert resumed.objects_demoted >= 1
        assert trees_equal(tree, dest)

    def test_no_resume_starts_fresh(self, tree, tmp_path):
        dest = str(tmp_path / "dest")
        sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING,
                  kill_after_objects=4)
        fresh = sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING,
                          resume=False)
        assert fresh.completed and fresh.objects_skipped == 0
        assert fresh.objects_transferred == fresh.nobjects
        assert trees_equal(tree, dest)

    def test_changed_source_rekeys_the_journal(self, tree, tmp_path):
        dest = str(tmp_path / "dest")
        sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING,
                  kill_after_objects=4)
        with open(os.path.join(tree, "small", "s000"), "r+b") as fh:
            fh.write(b"CHANGED")
        resumed = sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING)
        # dataset_id changed -> stale journal ignored, full re-send
        assert resumed.completed and resumed.objects_skipped == 0
        assert trees_equal(tree, dest)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(kill_at=st.integers(min_value=1, max_value=12),
           seed=st.integers(0, 99))
    def test_property_kill_at_any_chunk_never_loses_or_duplicates(
            self, kill_at, seed):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            src = os.path.join(tmp, "src")
            dest = os.path.join(tmp, "dest")
            small_mixed_spec(seed=seed % 3).generate(src)
            killed = sync_tree(src, dest, chunk_size=CHUNK,
                               packing=PACKING,
                               kill_after_objects=kill_at)
            assert killed.killed
            resumed = sync_tree(src, dest, chunk_size=CHUNK,
                                packing=PACKING)
            assert resumed.completed
            # no object lost, none re-sent that already landed
            assert resumed.objects_skipped == kill_at
            assert (resumed.objects_transferred + resumed.objects_skipped
                    == resumed.nobjects)
            assert trees_equal(src, dest)


class TestDES:
    def test_packed_beats_naive_on_files_per_sec(self, tmp_path):
        from repro.simnet.topology import short_haul

        src = str(tmp_path / "src")
        mixed_tree_spec(nsmall=80, seed=11).generate(src)
        m = scan_tree(src, CHUNK)
        packed = run_sim_dataset(
            short_haul(seed=1), m,
            packing=PackingConfig(object_bytes=64 * CHUNK,
                                  pack_threshold=16 * CHUNK))
        naive = run_sim_naive(short_haul(seed=1), m)
        assert packed.all_ok and naive.all_ok
        assert packed.nsessions < naive.nsessions
        assert packed.files_per_sec > 2 * naive.files_per_sec
        assert packed.goodput_bps > naive.goodput_bps

    def test_resume_sends_strictly_fewer_packets(self, tmp_path):
        from repro.simnet.topology import short_haul

        src = str(tmp_path / "src")
        mixed_tree_spec(nsmall=40, seed=13).generate(src)
        m = scan_tree(src, CHUNK)
        resume, restart = run_sim_resume(
            lambda: short_haul(seed=2), m, kill_after_objects=3,
            packing=PackingConfig(object_bytes=64 * CHUNK,
                                  pack_threshold=16 * CHUNK))
        assert resume.all_ok and restart.all_ok
        assert resume.packets_sent < restart.packets_sent


@pytest.mark.loopback
class TestLoopback:
    def test_sync_over_real_sockets(self, tmp_path):
        from repro.dataset import LoopbackTransport

        src = str(tmp_path / "src")
        dest = str(tmp_path / "dest")
        TreeSpec(sizes={"a/f1": 5000, "a/f2": 333, "b/big": 200_000},
                 seed=21).generate(src)
        transport = LoopbackTransport()
        try:
            result = sync_tree(src, dest, chunk_size=CHUNK,
                               packing=PackingConfig(
                                   object_bytes=16 * CHUNK,
                                   pack_threshold=2 * CHUNK),
                               transport=transport)
        finally:
            transport.close()
        assert result.completed and result.verify_failures == 0
        assert result.retransmissions >= 0
        assert trees_equal(src, dest)


class TestTelemetry:
    def test_dataset_events_are_emitted(self, tree, tmp_path):
        from repro.telemetry import (
            EV_CHUNK_DONE,
            EV_CHUNK_SCHEDULED,
            EV_DATASET_PACK,
            EV_DATASET_RESUME,
            EV_DATASET_UNPACK,
            EventBus,
            RingBufferSink,
        )

        dest = str(tmp_path / "dest")
        sink = RingBufferSink()
        bus = EventBus(sinks=[sink])
        sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING,
                  telemetry=bus, kill_after_objects=5)
        bus2 = EventBus(sinks=[sink])
        sync_tree(tree, dest, chunk_size=CHUNK, packing=PACKING,
                  telemetry=bus2)
        kinds = {e.kind for e in sink.events}
        assert {EV_DATASET_PACK, EV_DATASET_UNPACK, EV_CHUNK_SCHEDULED,
                EV_CHUNK_DONE, EV_DATASET_RESUME} <= kinds
        resume = [e for e in sink.events if e.kind == EV_DATASET_RESUME]
        assert resume[0].fields["objects_done"] == 5
