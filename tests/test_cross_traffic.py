"""Tests for the cross-traffic generators."""

import pytest

from repro.simnet import topology
from repro.simnet.cross_traffic import OnOffTraffic, PoissonTraffic, TrafficSink
from repro.simnet.packet import Address


class TestPoisson:
    def test_mean_rate_approximates_target(self):
        net = topology.short_haul()
        gen = net.add_poisson_cross_traffic(rate_bps=10e6, src_router=1, dst=2)
        net.sim.run(until=2.0)
        achieved = gen.sent * gen.packet_bytes * 8 / 2.0
        assert achieved == pytest.approx(10e6, rel=0.15)

    def test_sink_receives_traffic(self):
        net = topology.short_haul()
        net.add_poisson_cross_traffic(rate_bps=5e6, src_router=1, dst=2)
        net.sim.run(until=1.0)
        sink = net.cross_sinks[0]
        assert sink.datagrams > 100

    def test_stop_time_honoured(self):
        net = topology.short_haul()
        gen = net.add_poisson_cross_traffic(rate_bps=10e6, src_router=1, dst=2)
        gen.stop = 0.5
        net.sim.run(until=2.0)
        achieved = gen.sent * gen.packet_bytes * 8
        assert achieved <= 10e6 * 0.7

    def test_invalid_rate_rejected(self):
        net = topology.short_haul()
        with pytest.raises(ValueError):
            PoissonTraffic(net.sim, net.a, Address("lcse", 9), rate_bps=0)


class TestOnOff:
    def test_mean_rate_is_duty_cycle_fraction(self):
        net = topology.short_haul()
        gen = net.add_onoff_cross_traffic(
            on_rate_bps=20e6, mean_on=0.05, mean_off=0.05, src_router=1, dst=2
        )
        net.sim.run(until=4.0)
        achieved = gen.sent * gen.packet_bytes * 8 / 4.0
        # 50% duty cycle of 20 Mb/s ~ 10 Mb/s
        assert achieved == pytest.approx(10e6, rel=0.35)

    def test_invalid_params_rejected(self):
        net = topology.short_haul()
        with pytest.raises(ValueError):
            OnOffTraffic(net.sim, net.a, Address("lcse", 9),
                         on_rate_bps=1e6, mean_on=0.0, mean_off=1.0)

    def test_sink_to_endpoint_b_traverses_bottleneck(self):
        net = topology.contended_path()
        # preset wires ON/OFF traffic into endpoint b
        final_hop = net.link_between("r3", "cacr")
        net.sim.run(until=1.0)
        assert net.cross_sinks[0].datagrams > 0
        assert final_hop.stats.frames_sent >= net.cross_sinks[0].datagrams


class TestSink:
    def test_counts_bytes(self):
        net = topology.short_haul()
        sink = TrafficSink(net.b, port=999)
        from repro.simnet.sockets import UdpSocket
        tx = UdpSocket(net.a, net.a.allocate_port())
        tx.sendto(None, 100, Address("lcse", 999))
        net.sim.run()
        assert sink.datagrams == 1
        assert sink.bytes == 128  # 100 + UDP/IP headers
