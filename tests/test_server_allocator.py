"""Max-min bandwidth division and the Jain fairness metric."""

import pytest

from repro.analysis.metrics import jain_index
from repro.server import BandwidthAllocator


def record_into(shares, key):
    def apply(share):
        shares[key] = share
    return apply


class TestBandwidthAllocator:
    def test_equal_split_without_demands(self):
        allocator = BandwidthAllocator(90e6)
        shares = {}
        for key in ("a", "b", "c"):
            allocator.register(key, record_into(shares, key))
        allocated = allocator.reallocate()
        assert allocated == {"a": 30e6, "b": 30e6, "c": 30e6}
        assert shares == allocated

    def test_small_demand_satisfied_surplus_split(self):
        allocator = BandwidthAllocator(100e6)
        shares = {}
        allocator.register("capped", record_into(shares, "capped"),
                           demand_bps=10e6)
        allocator.register("x", record_into(shares, "x"))
        allocator.register("y", record_into(shares, "y"))
        allocator.reallocate()
        assert shares["capped"] == pytest.approx(10e6)
        assert shares["x"] == pytest.approx(45e6)
        assert shares["y"] == pytest.approx(45e6)

    def test_completion_speeds_up_survivors(self):
        allocator = BandwidthAllocator(80e6)
        shares = {}
        for key in ("a", "b"):
            allocator.register(key, record_into(shares, key))
        allocator.reallocate()
        assert shares["a"] == pytest.approx(40e6)
        allocator.unregister("b")
        allocator.reallocate()
        assert shares["a"] == pytest.approx(80e6)

    def test_no_budget_passes_demands_through(self):
        allocator = BandwidthAllocator(None)
        shares = {}
        allocator.register("free", record_into(shares, "free"))
        allocator.register("capped", record_into(shares, "capped"),
                           demand_bps=5e6)
        allocated = allocator.reallocate()
        assert allocated == {"free": None, "capped": 5e6}
        # "free" stayed unpaced (None -> None), so no push happened.
        assert shares == {"capped": 5e6}
        assert allocator.share("free") is None

    def test_apply_called_only_on_change(self):
        calls = []
        allocator = BandwidthAllocator(60e6)
        allocator.register("a", calls.append)
        allocator.reallocate()
        allocator.reallocate()  # same share, no second push
        assert calls == [60e6]

    def test_set_demand_takes_effect_next_pass(self):
        allocator = BandwidthAllocator(60e6)
        shares = {}
        allocator.register("a", record_into(shares, "a"))
        allocator.register("b", record_into(shares, "b"))
        allocator.reallocate()
        allocator.set_demand("a", 10e6)
        allocator.reallocate()
        assert shares["a"] == pytest.approx(10e6)
        assert shares["b"] == pytest.approx(50e6)

    def test_share_never_zero_under_tiny_budget(self):
        allocator = BandwidthAllocator(1e-6)
        shares = {}
        allocator.register("a", record_into(shares, "a"))
        allocator.register("b", record_into(shares, "b"))
        allocator.reallocate()
        assert shares["a"] >= 1.0 and shares["b"] >= 1.0

    def test_duplicate_registration_rejected(self):
        allocator = BandwidthAllocator(10e6)
        allocator.register("a", lambda share: None)
        with pytest.raises(ValueError):
            allocator.register("a", lambda share: None)

    @pytest.mark.parametrize("budget", [0, -1.0])
    def test_invalid_budget_rejected(self, budget):
        with pytest.raises(ValueError):
            BandwidthAllocator(budget)


class TestJainIndex:
    def test_perfect_fairness_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_approaches_one_over_n(self):
        assert jain_index([100.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        values = [1.0, 2.0, 3.0]
        assert jain_index(values) == pytest.approx(
            jain_index([v * 1e9 for v in values]))

    def test_empty_and_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -2.0])

    def test_all_zero_defined_as_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0
