"""Real-socket daemon tests: concurrent fetches, queueing, push, drain."""

import os
import threading

import numpy as np
import pytest

from repro.core.config import FobsConfig
from repro.runtime.files import send_file
from repro.server import ObjectServer, fetch_file

pytestmark = pytest.mark.loopback

CONFIG = FobsConfig(ack_frequency=16)


class RunningServer:
    """Start an ObjectServer on a thread; drain and join on exit."""

    def __init__(self, root, **kwargs):
        kwargs.setdefault("config", CONFIG)
        kwargs.setdefault("bind", "127.0.0.1")
        self.server = ObjectServer(str(root), port=0, **kwargs)
        self.snapshot = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.snapshot = self.server.serve_forever(self._ready)

    def __enter__(self):
        self._ready = threading.Event()
        self._thread.start()
        assert self._ready.wait(5), "server failed to start"
        return self

    def __exit__(self, *exc):
        self.server.request_drain()
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            self.server.stop()
            self._thread.join(timeout=5)

    @property
    def port(self):
        return self.server.port


@pytest.fixture
def objects(tmp_path):
    root = tmp_path / "objects"
    root.mkdir()
    rng = np.random.default_rng(4)
    for name, size in (("a.bin", 300_000), ("b.bin", 200_000),
                       ("c.bin", 150_000)):
        blob = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        (root / name).write_bytes(blob)
    return root


def fetch_many(names, port, outdir):
    results = {}

    def one(name):
        results[name] = fetch_file(
            name, "127.0.0.1", port, str(outdir / name), config=CONFIG,
            timeout=30)

    threads = [threading.Thread(target=one, args=(n,)) for n in names]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=40)
    return results


class TestConcurrentFetch:
    def test_two_simultaneous_fetches_byte_correct(self, objects, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        with RunningServer(objects) as running:
            results = fetch_many(["a.bin", "b.bin"], running.port, out)
        for name, result in results.items():
            assert result.completed and result.crc_ok, result.failure_reason
            assert (out / name).read_bytes() == (objects / name).read_bytes()
        assert running.snapshot.completed == 2
        assert running.snapshot.failed == 0

    def test_queue_then_run_under_max_active_one(self, objects, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        with RunningServer(objects, max_active=1, queue_depth=4) as running:
            results = fetch_many(["a.bin", "b.bin", "c.bin"],
                                 running.port, out)
        assert all(r.completed for r in results.values())
        assert running.snapshot.completed == 3
        counters = running.server.admission.counters
        assert counters.queued >= 2  # two of three had to wait

    def test_not_found_rejected_cleanly(self, objects, tmp_path):
        with RunningServer(objects) as running:
            result = fetch_file("missing.bin", "127.0.0.1", running.port,
                                str(tmp_path / "m.bin"), config=CONFIG,
                                timeout=10)
        assert not result.completed
        assert "no such object" in result.failure_reason
        assert not os.path.exists(tmp_path / "m.bin")

    def test_queue_overflow_rejected_with_reason(self, objects, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        with RunningServer(objects, max_active=1,
                           queue_depth=0) as running:
            # Occupy the only slot with a paced (slow) fetch...
            slow = {}

            def fetch_slow():
                slow["r"] = fetch_file(
                    "a.bin", "127.0.0.1", running.port, str(out / "a.bin"),
                    config=CONFIG, timeout=30, rate_cap_bps=int(2e6))

            thread = threading.Thread(target=fetch_slow)
            thread.start()
            deadline = 50
            while running.server.admission.active == () and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            # ...then a second request must be rejected "full".
            rejected = fetch_file(
                "b.bin", "127.0.0.1", running.port, str(out / "b.bin"),
                config=CONFIG, timeout=10)
            thread.join(timeout=40)
        assert slow["r"].completed
        assert not rejected.completed
        assert "full" in rejected.failure_reason


class TestPushCompat:
    def test_vanilla_v1_push_lands_in_root(self, objects, tmp_path):
        src = tmp_path / "push_src.bin"
        blob = os.urandom(120_000)
        src.write_bytes(blob)
        with RunningServer(objects) as running:
            result = send_file(str(src), "127.0.0.1", running.port,
                               config=CONFIG, timeout=30)
        assert result.completed
        pushed = [p for p in os.listdir(objects)
                  if p.startswith("push-") and p.endswith(".bin")]
        assert len(pushed) == 1
        assert (objects / pushed[0]).read_bytes() == blob

    def test_resumable_v2_push_shares_udp_socket(self, objects, tmp_path):
        src = tmp_path / "push_src.bin"
        blob = os.urandom(150_000)
        src.write_bytes(blob)
        with RunningServer(objects) as running:
            result = send_file(str(src), "127.0.0.1", running.port,
                               config=CONFIG, timeout=30, resume=True,
                               max_attempts=2)
        assert result.completed and result.attempts == 1
        pushed = [p for p in os.listdir(objects)
                  if p.startswith("push-") and p.endswith(".bin")]
        assert (objects / pushed[0]).read_bytes() == blob
        # Wire bytes (headers included), so at least the payload size.
        assert running.snapshot.bytes_received >= len(blob)


class TestDrainAndStats:
    def test_drain_finishes_actives_rejects_newcomers(self, objects,
                                                      tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        with RunningServer(objects) as running:
            active = {}

            def fetch_active():
                active["r"] = fetch_file(
                    "a.bin", "127.0.0.1", running.port, str(out / "a.bin"),
                    config=CONFIG, timeout=30, rate_cap_bps=int(4e6))

            thread = threading.Thread(target=fetch_active)
            thread.start()
            deadline = 50
            while not running.server.admission.active and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            running.server.request_drain()
            threading.Event().wait(0.2)
            late = fetch_file("b.bin", "127.0.0.1", running.port,
                              str(out / "b.bin"), config=CONFIG, timeout=10)
            thread.join(timeout=40)
        assert active["r"].completed  # the active transfer finished
        assert not late.completed     # the late request was turned away
        assert running.snapshot.completed == 1

    def test_stats_snapshot_renders(self, objects, tmp_path):
        out = tmp_path / "out"
        out.mkdir()
        with RunningServer(objects, rate_budget_bps=200e6) as running:
            fetch_many(["a.bin"], running.port, out)
            # The client returns on its own completion signal; give the
            # server's loop a moment to record the finished transfer.
            for _ in range(100):
                snap = running.server.stats()
                if snap.completed:
                    break
                threading.Event().wait(0.05)
        assert snap.completed == 1
        line = snap.render()
        assert "done=1" in line and "budget=" in line
        assert "up=" in line
        final = running.snapshot
        assert final.bytes_sent >= 300_000  # wire bytes, headers included
        assert final.draining
