"""Tests for the generic parameter-sweep framework."""

import pytest

from repro.analysis.sweep import (
    FOBS_PARAMS,
    PATHS,
    TCP_PARAMS,
    parse_values,
    sweep_fobs,
    sweep_tcp,
)


class TestSweepFobs:
    def test_sweep_runs_each_value(self):
        res = sweep_fobs("short_haul", "ack_frequency", (8, 64),
                         nbytes=500_000)
        assert [p.value for p in res.points] == [8, 64]
        assert all(p.percent_of_bottleneck > 0 for p in res.points)

    def test_small_frequency_penalty_visible(self):
        res = sweep_fobs("short_haul", "ack_frequency", (1, 64),
                         nbytes=2_000_000)
        low, high = res.points
        assert high.percent_of_bottleneck > 2 * low.percent_of_bottleneck

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            sweep_fobs("mars_link", "ack_frequency", (1,))

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            sweep_fobs("short_haul", "warp_factor", (1,))

    def test_render_contains_table_and_series(self):
        res = sweep_fobs("short_haul", "batch_size", (2,), nbytes=300_000)
        out = res.render()
        assert "batch_size" in out
        assert "#" in out


class TestSweepTcp:
    def test_window_scaling_sweep(self):
        res = sweep_tcp("long_haul", "window_scaling", (True, False),
                        nbytes=2_000_000)
        scaled, unscaled = res.points
        assert scaled.percent_of_bottleneck > unscaled.percent_of_bottleneck

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            sweep_tcp("long_haul", "ack_frequency", (1,))


class TestParseValues:
    def test_int_params(self):
        assert parse_values("fobs", "ack_frequency", "1, 8,64") == [1, 8, 64]

    def test_bool_params(self):
        assert parse_values("tcp", "window_scaling", "true,0,yes") == [
            True, False, True]

    def test_str_params(self):
        assert parse_values("fobs", "scheduler", "circular,random") == [
            "circular", "random"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_values("fobs", "bogus", "1")

    def test_registries_consistent(self):
        assert "ack_frequency" in FOBS_PARAMS
        assert "window_scaling" in TCP_PARAMS
        assert set(PATHS) == {"short_haul", "long_haul", "gigabit",
                              "contended", "satellite"}


class TestCliSweep:
    def test_cli_sweep_fobs(self, capsys):
        from repro.analysis.cli import main
        assert main(["sweep", "fobs", "--param", "ack_frequency",
                     "--values", "8,64", "--nbytes", "300000"]) == 0
        out = capsys.readouterr().out
        assert "ack_frequency" in out
