"""Regression: a dead reverse path must never hang a sender.

Before stall hardening, a sender whose acknowledgement channel was
permanently blackholed blasted until ``run(time_limit=...)`` (DES) or
the harness deadline (loopback) expired, and the timeout was silently
indistinguishable from success.  These tests pin the hardened
behaviour in both backends: terminate via the stall state machine
*well before* the time limit, with an explicit failure diagnosis.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import FobsConfig
from repro.core.session import FobsTransfer
from repro.runtime.transfer import run_loopback_transfer
from repro.simnet import blackhole_window, install_faults, short_haul

TIME_LIMIT = 600.0


def dead_ack_config(**overrides) -> FobsConfig:
    defaults = dict(ack_frequency=16, stall_timeout=0.3, stall_backoff=2.0,
                    stall_abort_after=2.0, receiver_idle_timeout=30.0)
    defaults.update(overrides)
    return FobsConfig(**defaults)


class TestDesBackend:
    def test_blackholed_ack_channel_aborts_quickly(self):
        """Reverse path (ACKs + completion) dead from t=0: the sender
        must stall-abort long before the 600 s time limit."""
        net = short_haul(seed=1)
        install_faults(net, blackhole_window(0.0, 1e9), direction="reverse")
        transfer = FobsTransfer(net, 500_000, dead_ack_config())
        stats = transfer.run(time_limit=TIME_LIMIT)
        assert stats.failed
        assert not stats.timed_out
        assert not stats.ok
        assert "stall" in stats.failure_reason
        assert stats.stall_events >= 1
        assert stats.stall_probes >= 1
        # "Well before": an order of magnitude under the time limit.
        assert stats.duration < TIME_LIMIT / 10

    def test_blackholed_data_path_fails_receiver_liveness(self):
        """Forward path dead from t=0: the receiver's liveness timeout
        fails the transfer (the sender may also stall-abort first —
        either way the failure is diagnosed, not timed out)."""
        net = short_haul(seed=1)
        install_faults(net, blackhole_window(0.0, 1e9), direction="forward")
        cfg = dead_ack_config(receiver_idle_timeout=1.0, stall_abort_after=30.0)
        stats = FobsTransfer(net, 500_000, cfg).run(time_limit=TIME_LIMIT)
        assert stats.failed
        assert not stats.timed_out
        assert "liveness" in stats.failure_reason
        assert stats.duration < TIME_LIMIT / 10

    def test_abort_time_tracks_config(self):
        """The abort happens at ~stall_abort_after, not at some
        hard-coded constant."""
        def abort_duration(abort_after: float) -> float:
            net = short_haul(seed=2)
            install_faults(net, blackhole_window(0.0, 1e9),
                           direction="reverse")
            cfg = dead_ack_config(stall_abort_after=abort_after)
            return FobsTransfer(net, 200_000, cfg).run(
                time_limit=TIME_LIMIT).duration

        fast, slow = abort_duration(1.0), abort_duration(4.0)
        assert fast < slow
        assert fast < 4.0
        assert slow < 16.0


@pytest.mark.loopback
class TestLoopbackBackend:
    def test_blackholed_ack_channel_terminates_quickly(self):
        """Real sockets: receiver swallows every ACK and the completion
        signal; both threads must exit far ahead of the deadline."""
        cfg = FobsConfig(ack_frequency=32, stall_timeout=0.3,
                         stall_abort_after=1.5, receiver_idle_timeout=1.0)
        started = time.monotonic()
        result = run_loopback_transfer(nbytes=200_000, config=cfg,
                                       blackhole_acks=True, timeout=60.0)
        elapsed = time.monotonic() - started
        assert not result.completed
        assert result.failure_reason is not None
        assert "stall" in result.failure_reason
        assert result.stall_events >= 1
        assert elapsed < 15.0
