"""Tests for the sans-IO FOBS sender state machine."""

import numpy as np
import pytest

from repro.core.config import FobsConfig
from repro.core.packets import AckPacket
from repro.core.sender import FobsSender


def make_ack(sender, seqs, ack_id=0):
    bm = np.zeros(sender.npackets, dtype=np.bool_)
    bm[list(seqs)] = True
    return AckPacket(ack_id=ack_id, received_count=len(seqs), bitmap=bm)


class TestBatches:
    def test_batch_size_honoured(self):
        s = FobsSender(FobsConfig(batch_size=2), 10 * 1024)
        assert [p.seq for p in s.next_batch()] == [0, 1]
        assert [p.seq for p in s.next_batch()] == [2, 3]

    def test_first_pass_counts_first_transmissions(self):
        s = FobsSender(FobsConfig(batch_size=5), 5 * 1024)
        s.next_batch()
        assert s.stats.first_transmissions == 5
        assert s.stats.retransmissions == 0

    def test_wrap_counts_retransmissions(self):
        s = FobsSender(FobsConfig(batch_size=5), 5 * 1024)
        s.next_batch()
        batch = s.next_batch()
        assert [p.seq for p in batch] == [0, 1, 2, 3, 4][:len(batch)]
        assert s.stats.retransmissions == len(batch)
        assert all(p.transmission == 1 for p in batch)

    def test_empty_after_all_acked(self):
        s = FobsSender(FobsConfig(batch_size=2), 4 * 1024)
        s.on_ack(make_ack(s, range(4)), now=1.0)
        assert s.next_batch() == []
        assert s.all_acked

    def test_empty_after_completion(self):
        s = FobsSender(FobsConfig(), 4 * 1024)
        s.on_completion(now=1.0)
        assert s.next_batch() == []
        assert s.complete

    def test_last_packet_may_be_short(self):
        s = FobsSender(FobsConfig(packet_size=1000), 2500)
        assert s.npackets == 3
        assert s.payload_bytes(0) == 1000
        assert s.payload_bytes(2) == 500

    def test_batch_counter(self):
        s = FobsSender(FobsConfig(batch_size=2), 10 * 1024)
        s.next_batch()
        s.next_batch()
        assert s.stats.batches == 2


class TestAckProcessing:
    def test_acked_packets_not_resent(self):
        s = FobsSender(FobsConfig(batch_size=4), 4 * 1024)
        s.next_batch()
        s.on_ack(make_ack(s, [0, 2]), now=0.1)
        resent = [p.seq for p in s.next_batch()]
        # Greedy: the batch cycles over the unacked set, never touching
        # acknowledged packets.
        assert resent[:2] == [1, 3]
        assert set(resent) == {1, 3}

    def test_stale_ack_still_merges_bitmap(self):
        s = FobsSender(FobsConfig(), 4 * 1024)
        s.on_ack(make_ack(s, [0], ack_id=5), now=0.1)
        s.on_ack(make_ack(s, [0, 1], ack_id=3), now=0.2)  # stale id
        assert s.stats.stale_acks == 1
        assert bool(s.acked.array[1])  # info still merged

    def test_newly_confirmed_count_returned(self):
        s = FobsSender(FobsConfig(), 4 * 1024)
        assert s.on_ack(make_ack(s, [0, 1], ack_id=0), now=0.1) == 2
        assert s.on_ack(make_ack(s, [0, 1, 2], ack_id=1), now=0.2) == 1

    def test_progress_feeds_congestion_policy(self):
        cfg = FobsConfig(congestion_mode="backoff", congestion_threshold=0.1)
        s = FobsSender(cfg, 100 * 1024)
        # heavy implied loss: sent many, receiver gained little
        for i in range(20):
            for _ in range(20):
                s.next_batch()
            s.on_ack(make_ack(s, [i], ack_id=i), now=0.01 * (i + 1))
        assert s.congestion.batch_delay() > 0


class TestWaste:
    def test_waste_zero_when_no_retransmissions(self):
        s = FobsSender(FobsConfig(batch_size=4), 4 * 1024)
        s.next_batch()
        assert s.wasted_fraction == 0.0

    def test_waste_counts_duplicates(self):
        s = FobsSender(FobsConfig(batch_size=4), 4 * 1024)
        s.next_batch()
        s.next_batch()
        assert s.wasted_fraction == pytest.approx(1.0)

    def test_waste_validates_required(self):
        from repro.core.sender import SenderStats
        with pytest.raises(ValueError):
            SenderStats().wasted_fraction(0)


class TestCompletion:
    def test_completion_records_time_once(self):
        s = FobsSender(FobsConfig(), 1024)
        s.on_completion(now=5.0)
        s.on_completion(now=9.0)
        assert s.stats.completed_at == 5.0
