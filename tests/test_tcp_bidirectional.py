"""Bidirectional TCP: both endpoints transfer data on one connection."""

from repro.simnet.packet import Address
from repro.tcp.connection import TcpConnection, TcpListener

from _support import tiny_path


class TestBidirectional:
    def test_simultaneous_two_way_bulk(self):
        """Client pushes 200 KB while the server pushes 150 KB back on
        the same connection; both directions must complete."""
        net = tiny_path()
        sim = net.sim
        got_at_server = []
        got_at_client = []
        server_holder = {}

        def on_conn(conn):
            server_holder["conn"] = conn
            conn.on_deliver = got_at_server.append
            conn.app_write(150_000)  # server->client data

        listener = TcpListener(sim, net.b, 5001, on_connection=on_conn)
        client = TcpConnection(sim, net.a, net.a.allocate_port(),
                               peer=Address(net.b.name, 5001))
        client.on_deliver = got_at_client.append
        client.on_established = lambda: client.app_write(200_000)
        client.connect()
        sim.run(until=30.0, stop_when=lambda: (
            sum(got_at_server) >= 200_000 and sum(got_at_client) >= 150_000))
        assert sum(got_at_server) == 200_000
        assert sum(got_at_client) == 150_000
        # let the final (possibly delayed) ACKs land
        sim.run(until=sim.now + 1.0)
        assert client.all_acked
        assert server_holder["conn"].all_acked

    def test_piggybacked_acks_reduce_pure_ack_count(self):
        """With data flowing both ways, data segments carry the ACKs."""
        one_way_acks, two_way_acks = [], []
        for two_way, sink in ((False, one_way_acks), (True, two_way_acks)):
            net = tiny_path()
            sim = net.sim
            delivered = []

            def on_conn(conn, two_way=two_way):
                conn.on_deliver = delivered.append
                if two_way:
                    conn.app_write(200_000)

            listener = TcpListener(sim, net.b, 5001, on_connection=on_conn)
            client = TcpConnection(sim, net.a, net.a.allocate_port(),
                                   peer=Address(net.b.name, 5001))
            client.on_established = lambda: client.app_write(200_000)
            client.connect()
            sim.run(until=30.0, stop_when=lambda: sum(delivered) >= 200_000)
            server = next(iter(listener.connections.values()))
            sink.append(server.stats.acks_sent)
        # data segments piggyback the cumulative ACK field, so the
        # reverse direction does not need *more* pure ACKs.
        assert two_way_acks[0] <= one_way_acks[0] * 1.5

    def test_two_way_loss_recovery(self):
        net = tiny_path(loss_rate=0.02, seed=4)
        sim = net.sim
        got_a, got_b = [], []

        def on_conn(conn):
            conn.on_deliver = got_b.append
            conn.app_write(100_000)

        TcpListener(sim, net.b, 5001, on_connection=on_conn)
        client = TcpConnection(sim, net.a, net.a.allocate_port(),
                               peer=Address(net.b.name, 5001))
        client.on_deliver = got_a.append
        client.on_established = lambda: client.app_write(100_000)
        client.connect()
        sim.run(until=120.0, stop_when=lambda: (
            sum(got_a) >= 100_000 and sum(got_b) >= 100_000))
        assert sum(got_a) == 100_000
        assert sum(got_b) == 100_000
