"""Tests for batch-size policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.rate import AdaptiveBatchPolicy, FixedBatchPolicy, make_batch_policy


class TestFixed:
    def test_constant(self):
        p = FixedBatchPolicy(2)
        for _ in range(5):
            assert p.next_batch_size() == 2

    def test_feedback_ignored(self):
        p = FixedBatchPolicy(2)
        p.on_ack_progress(1000, 0.1)
        assert p.next_batch_size() == 2

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            FixedBatchPolicy(0)


class TestAdaptive:
    def test_starts_at_min(self):
        p = AdaptiveBatchPolicy(min_batch=1, max_batch=64)
        assert p.next_batch_size() == 1

    def test_grows_with_receiver_progress(self):
        p = AdaptiveBatchPolicy(min_batch=1, max_batch=64)
        for _ in range(50):
            p.on_ack_progress(32, 0.01)
        assert p.next_batch_size() == 32

    def test_clamped_to_max(self):
        p = AdaptiveBatchPolicy(min_batch=1, max_batch=8)
        for _ in range(50):
            p.on_ack_progress(1000, 0.01)
        assert p.next_batch_size() == 8

    def test_shrinks_when_receiver_stalls(self):
        p = AdaptiveBatchPolicy(min_batch=1, max_batch=64)
        for _ in range(50):
            p.on_ack_progress(32, 0.01)
        for _ in range(50):
            p.on_ack_progress(0, 0.01)
        assert p.next_batch_size() == 1

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy().on_ack_progress(-1, 0.01)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(min_batch=5, max_batch=2)
        with pytest.raises(ValueError):
            AdaptiveBatchPolicy(alpha=0.0)

    @given(deltas=st.lists(st.integers(0, 10_000), max_size=100))
    def test_property_always_within_bounds(self, deltas):
        p = AdaptiveBatchPolicy(min_batch=2, max_batch=16)
        for d in deltas:
            p.on_ack_progress(d, 0.01)
            assert 2 <= p.next_batch_size() <= 16


class TestFactory:
    def test_fixed(self):
        p = make_batch_policy("fixed", 4, 64)
        assert isinstance(p, FixedBatchPolicy)
        assert p.next_batch_size() == 4

    def test_adaptive(self):
        assert isinstance(make_batch_policy("adaptive", 2, 64), AdaptiveBatchPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_batch_policy("bogus", 2, 64)
