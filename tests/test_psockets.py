"""Tests for the PSockets striping baseline and the socket-count probe."""

import pytest
from hypothesis import given, strategies as st

from repro.psockets import probe_optimal_sockets, run_striped_transfer
from repro.psockets.striping import stripe_sizes
from repro.tcp import TcpOptions

from _support import tiny_path


class TestStripeSizes:
    def test_even_split(self):
        assert stripe_sizes(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        assert stripe_sizes(10, 3) == [4, 3, 3]

    def test_single_socket(self):
        assert stripe_sizes(100, 1) == [100]

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            stripe_sizes(100, 0)
        with pytest.raises(ValueError):
            stripe_sizes(2, 3)

    @given(nbytes=st.integers(min_value=1, max_value=10**9),
           n=st.integers(min_value=1, max_value=64))
    def test_property_sizes_sum_and_balance(self, nbytes, n):
        if nbytes < n:
            return
        sizes = stripe_sizes(nbytes, n)
        assert sum(sizes) == nbytes
        assert max(sizes) - min(sizes) <= 1
        assert all(s > 0 for s in sizes)


class TestStripedTransfer:
    def test_single_stream_equals_tcp(self):
        net = tiny_path()
        res = run_striped_transfer(net, 300_000, 1)
        assert res.completed
        assert res.nsockets == 1
        assert len(res.per_stream) == 1

    def test_multi_stream_completes(self):
        net = tiny_path()
        res = run_striped_transfer(net, 300_000, 8)
        assert res.completed
        assert len(res.per_stream) == 8

    def test_striping_aggregates_unscaled_windows(self):
        """On a high-BDP path without LWE, 8 streams beat 1 stream —
        the first PSockets effect the paper describes."""
        opts = TcpOptions(window_scaling=False)
        one = run_striped_transfer(tiny_path(delay=20e-3), 2_000_000, 1, options=opts)
        eight = run_striped_transfer(tiny_path(delay=20e-3), 2_000_000, 8, options=opts)
        assert eight.throughput_bps > 3 * one.throughput_bps

    def test_lossy_path_completes(self):
        net = tiny_path(loss_rate=0.01, seed=1)
        res = run_striped_transfer(net, 500_000, 4)
        assert res.completed

    def test_aggregate_counters(self):
        net = tiny_path(loss_rate=0.02, seed=2)
        res = run_striped_transfer(net, 500_000, 4)
        assert res.total_retransmits >= 0
        assert res.total_timeouts >= 0

    def test_str_rendering(self):
        res = run_striped_transfer(tiny_path(), 100_000, 2)
        assert "n=2" in str(res)


class TestProbe:
    def test_probe_picks_best_candidate(self):
        """On an unscaled-window fat pipe, more sockets win."""
        opts = TcpOptions(window_scaling=False)
        probe = probe_optimal_sockets(
            lambda seed: tiny_path(seed=seed, delay=20e-3),
            probe_bytes=1_000_000,
            candidates=(1, 8),
            options=opts,
        )
        assert probe.best_nsockets == 8
        assert set(probe.throughput_by_count) == {1, 8}

    def test_probe_requires_candidates(self):
        with pytest.raises(ValueError):
            probe_optimal_sockets(lambda s: tiny_path(seed=s), candidates=())

    def test_probe_str(self):
        opts = TcpOptions(window_scaling=False)
        probe = probe_optimal_sockets(
            lambda seed: tiny_path(seed=seed),
            probe_bytes=200_000,
            candidates=(1, 2),
            options=opts,
        )
        assert "best=" in str(probe)
