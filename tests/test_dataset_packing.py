"""Packer/splitter: plan invariants, framing round-trips, tamper detection."""

from __future__ import annotations

import os

import pytest

from repro.core.manifest import ALGO_CRC32, ALGO_SHA256
from repro.dataset.manifest import manifest_from_files
from repro.dataset.packing import (
    KIND_PACKED,
    KIND_STRIPE,
    KIND_WHOLE,
    PackCorrupt,
    PackingConfig,
    pack_object,
    plan_objects,
    unpack_object,
    verify_members_against_manifest,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

CHUNK = 512
CFG = PackingConfig(object_bytes=4 * CHUNK, pack_threshold=CHUNK)


def coverage_map(plan):
    """(path, offset) -> length for every member of every object."""
    cover = {}
    for obj in plan.objects:
        for m in obj.members:
            key = (m.path, m.file_offset)
            assert key not in cover, "byte range covered twice"
            cover[key] = m.length
    return cover


class TestPlan:
    def test_every_byte_covered_exactly_once(self):
        files = {
            "tiny1": b"a" * 10,
            "tiny2": b"b" * 100,
            "mid": b"c" * (2 * CHUNK),
            "huge": b"d" * (9 * CHUNK + 7),
            "empty": b"",
        }
        m = manifest_from_files(files, CHUNK)
        plan = plan_objects(m, CFG)
        cover = coverage_map(plan)
        for path, data in files.items():
            got = sum(length for (p, _), length in cover.items()
                      if p == path)
            assert got == len(data)
        assert plan.empty_files == ("empty",)
        assert plan.payload_bytes == m.total_bytes

    def test_kind_classification(self):
        m = manifest_from_files({
            "small": b"s" * 10,            # < pack_threshold -> packed
            "whole": b"w" * (3 * CHUNK),   # <= object_bytes  -> whole
            "big": b"b" * (10 * CHUNK),    # > object_bytes   -> striped
        }, CHUNK)
        plan = plan_objects(m, CFG)
        kinds = {}
        for obj in plan.objects:
            for mem in obj.members:
                kinds.setdefault(mem.path, obj.kind)
        assert kinds == {"small": KIND_PACKED, "whole": KIND_WHOLE,
                         "big": KIND_STRIPE}
        # 10 chunks at 4-chunk objects -> stripes of 4, 4, 2 chunks
        stripes = [o for o in plan.objects if o.kind == KIND_STRIPE]
        assert [o.payload_bytes for o in stripes] == [
            4 * CHUNK, 4 * CHUNK, 2 * CHUNK]
        assert [o.stripe for o in stripes] == [0, 1, 2]
        assert all(o.nstripes == 3 for o in stripes)

    def test_stripe_members_are_chunk_aligned(self):
        m = manifest_from_files({"big": b"x" * (11 * CHUNK + 3)}, CHUNK)
        plan = plan_objects(m, CFG)
        for obj in plan.objects:
            assert obj.members[0].file_offset % CHUNK == 0

    def test_packed_objects_close_at_object_bytes(self):
        # 20 files of half an object each can never fit 3 to an object.
        m = manifest_from_files(
            {f"f{i:02d}": bytes([i]) * (2 * CHUNK - CHUNK // 2)
             for i in range(20)}, CHUNK,
        )
        plan = plan_objects(m, PackingConfig(object_bytes=4 * CHUNK,
                                             pack_threshold=4 * CHUNK))
        for obj in plan.objects:
            assert obj.payload_bytes <= 4 * CHUNK
            assert obj.kind == KIND_PACKED
            assert len(obj.members) <= 2

    def test_plan_is_deterministic(self):
        files = {f"d{i % 3}/f{i}": os.urandom(i * 37 % (3 * CHUNK))
                 for i in range(30)}
        m = manifest_from_files(files, CHUNK)
        p1, p2 = plan_objects(m, CFG), plan_objects(m, CFG)
        assert [(o.index, o.kind, o.members) for o in p1.objects] == \
               [(o.index, o.kind, o.members) for o in p2.objects]

    def test_object_bytes_must_align_to_chunk(self):
        m = manifest_from_files({"a": b"x"}, CHUNK)
        with pytest.raises(ValueError):
            plan_objects(m, PackingConfig(object_bytes=CHUNK + 1,
                                          pack_threshold=CHUNK))


def roundtrip(files, algo=ALGO_CRC32):
    m = manifest_from_files(files, CHUNK, algo=algo)
    plan = plan_objects(m, CFG)
    out = {path: bytearray(len(data)) for path, data in files.items()}
    for obj in plan.objects:
        blob = pack_object(obj, root="", algo=algo, data=files)
        kind, members = unpack_object(blob)
        assert kind == obj.kind
        assert verify_members_against_manifest(members, m) == []
        for mem in members:
            out[mem.path][mem.file_offset:mem.file_offset
                          + len(mem.payload)] = mem.payload
    for path in plan.empty_files:
        assert files[path] == b""
    return {p: bytes(b) for p, b in out.items()}


class TestPackUnpack:
    def test_byte_equality(self):
        files = {
            "a/one": os.urandom(77),
            "a/two": os.urandom(2 * CHUNK),
            "b/three": os.urandom(6 * CHUNK + 13),
            "zero": b"",
        }
        assert roundtrip(files) == files

    def test_wire_bytes_is_exact(self):
        files = {"x": os.urandom(300), "y": os.urandom(5 * CHUNK)}
        m = manifest_from_files(files, CHUNK, algo=ALGO_SHA256)
        plan = plan_objects(m, CFG)
        for obj in plan.objects:
            blob = pack_object(obj, root="", algo=ALGO_SHA256, data=files)
            assert len(blob) == obj.wire_bytes(ALGO_SHA256)

    def test_pack_from_disk_matches_memory(self, tmp_path):
        files = {"d/f1": os.urandom(900), "d/f2": os.urandom(3 * CHUNK)}
        for path, payload in files.items():
            full = tmp_path / path
            full.parent.mkdir(parents=True, exist_ok=True)
            full.write_bytes(payload)
        m = manifest_from_files(files, CHUNK)
        plan = plan_objects(m, CFG)
        for obj in plan.objects:
            assert pack_object(obj, str(tmp_path), ALGO_CRC32) == \
                   pack_object(obj, "", ALGO_CRC32, data=files)

    def test_shrunken_source_raises(self, tmp_path):
        (tmp_path / "f").write_bytes(b"q" * (2 * CHUNK))
        m = manifest_from_files({"f": b"q" * (2 * CHUNK)}, CHUNK)
        plan = plan_objects(m, CFG)
        (tmp_path / "f").write_bytes(b"q" * 10)
        with pytest.raises(PackCorrupt):
            pack_object(plan.objects[0], str(tmp_path), ALGO_CRC32)

    @settings(max_examples=25, deadline=None)
    @given(files=st.dictionaries(
        st.text(alphabet="xyz", min_size=1, max_size=6),
        st.binary(min_size=0, max_size=6 * CHUNK),
        min_size=1, max_size=6),
        algo=st.sampled_from([ALGO_CRC32, ALGO_SHA256]))
    def test_property_byte_equality(self, files, algo):
        assert roundtrip(files, algo) == files


class TestTamper:
    def test_every_single_byte_flip_is_detected(self):
        files = {"p1": b"alpha" * 30, "p2": b"beta" * 40}
        m = manifest_from_files(files, CHUNK)
        plan = plan_objects(m, CFG)
        blob = bytearray(pack_object(plan.objects[0], "", ALGO_CRC32,
                                     data=files))
        for pos in range(len(blob)):
            blob[pos] ^= 0x01
            try:
                kind, members = unpack_object(bytes(blob))
                # Framing CRC may miss nothing, but if it ever parsed,
                # the manifest cross-check must catch payload damage.
                assert verify_members_against_manifest(members, m) != []
            except PackCorrupt:
                pass
            blob[pos] ^= 0x01
        unpack_object(bytes(blob))  # restored blob is valid again

    def test_truncation_raises(self):
        files = {"t": b"data" * 100}
        m = manifest_from_files(files, CHUNK)
        blob = pack_object(plan_objects(m, CFG).objects[0], "",
                           ALGO_CRC32, data=files)
        for cut in (0, 3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(PackCorrupt):
                unpack_object(blob[:cut])

    def test_foreign_member_fails_manifest_check(self):
        files = {"known": b"k" * 100}
        other = {"stranger": b"s" * 100}
        m = manifest_from_files(files, CHUNK)
        mo = manifest_from_files(other, CHUNK)
        blob = pack_object(plan_objects(mo, CFG).objects[0], "",
                           ALGO_CRC32, data=other)
        _, members = unpack_object(blob)
        assert verify_members_against_manifest(members, m) == ["stranger"]
