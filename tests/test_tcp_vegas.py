"""Tests for TCP Vegas delay-based congestion avoidance."""

import pytest

from repro.tcp import TcpOptions, run_bulk_transfer
from repro.tcp.highspeed import make_controller
from repro.tcp.vegas import VegasController

from _support import tiny_path

MSS = 1460


class TestVegasController:
    def test_base_rtt_tracks_minimum(self):
        v = VegasController(MSS)
        v.on_rtt_sample(0.1)
        v.on_rtt_sample(0.05)
        v.on_rtt_sample(0.2)
        assert v.base_rtt == 0.05

    def test_diff_none_before_samples(self):
        assert VegasController(MSS).diff_segments() is None

    def test_diff_zero_at_base_rtt(self):
        v = VegasController(MSS)
        v.cwnd = 10 * MSS
        v.on_rtt_sample(0.1)
        assert v.diff_segments() == pytest.approx(0.0)

    def test_diff_counts_queued_segments(self):
        """diff ~ segments sitting in queues: w*(1 - base/rtt)."""
        v = VegasController(MSS)
        v.cwnd = 10 * MSS
        v.on_rtt_sample(0.1)
        v.on_rtt_sample(0.2)  # RTT doubled: half the window is queued
        assert v.diff_segments() == pytest.approx(5.0)

    def test_grows_when_diff_below_alpha(self):
        v = VegasController(MSS, alpha=2, beta=4)
        v.ssthresh = 1  # force CA
        v.cwnd = 10 * MSS
        v.on_rtt_sample(0.1)  # diff = 0 < alpha
        v.on_new_ack(int(v.cwnd))  # one full window acked
        assert v.cwnd == 11 * MSS

    def test_shrinks_when_diff_above_beta(self):
        v = VegasController(MSS, alpha=2, beta=4)
        v.ssthresh = 1
        v.cwnd = 10 * MSS
        v.on_rtt_sample(0.1)
        v.on_rtt_sample(0.2)  # diff = 5 > beta
        v.on_new_ack(int(v.cwnd))
        assert v.cwnd == 9 * MSS

    def test_holds_in_band(self):
        v = VegasController(MSS, alpha=2, beta=8)
        v.ssthresh = 1
        v.cwnd = 10 * MSS
        v.on_rtt_sample(0.1)
        v.on_rtt_sample(0.15)  # diff ~ 3.3, in [2, 8]
        v.on_new_ack(int(v.cwnd))
        assert v.cwnd == 10 * MSS

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            VegasController(MSS, alpha=0, beta=4)
        with pytest.raises(ValueError):
            VegasController(MSS, alpha=5, beta=4)

    def test_invalid_rtt_rejected(self):
        with pytest.raises(ValueError):
            VegasController(MSS).on_rtt_sample(0.0)

    def test_factory(self):
        assert isinstance(make_controller("vegas", MSS), VegasController)


class TestVegasEndToEnd:
    def test_transfer_completes(self):
        net = tiny_path(delay=10e-3)
        opts = TcpOptions(congestion_control="vegas")
        res = run_bulk_transfer(net, 2_000_000, sender_options=opts,
                                receiver_options=opts)
        assert res.completed

    def test_vegas_keeps_bottleneck_queue_shallow(self):
        """Vegas's raison d'etre: after the slow-start transient it
        drains the standing queue that Reno keeps pinned at capacity.
        Compared by *mean* queue depth over a multi-second transfer
        (slow-start overshoot makes the peaks similar — authentic)."""
        from repro.simnet.monitor import Monitor

        means = {}
        for cc in ("reno", "vegas"):
            net = tiny_path(bandwidth_bps=1e7, delay=5e-3,
                            queue_bytes=64 * 1024)
            mon = Monitor(net.sim, interval=0.05)
            mon.watch_queue_depth(net.link_between("a", "r1"))
            mon.start()
            opts = TcpOptions(congestion_control=cc)
            res = run_bulk_transfer(net, 6_000_000, sender_options=opts,
                                    receiver_options=opts, time_limit=120.0)
            assert res.completed
            means[cc] = mon.series["queue:a->r1"].mean()
        assert means["vegas"] < 0.6 * means["reno"]

    def test_vegas_avoids_retransmissions_on_small_buffer(self):
        net = tiny_path(bandwidth_bps=1e7, delay=5e-3, queue_bytes=32 * 1024)
        opts = TcpOptions(congestion_control="vegas")
        res = run_bulk_transfer(net, 2_000_000, sender_options=opts,
                                receiver_options=opts, time_limit=120.0)
        assert res.completed
        assert res.sender_stats.retransmitted_segments == 0
        # and it still uses the link well
        assert res.percent_of_bottleneck > 15  # of the 100 Mb/s nominal
