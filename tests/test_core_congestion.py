"""Tests for the Section 7 congestion-response policies."""

import pytest

from repro.core.congestion import (
    BackoffPolicy,
    CongestionSignal,
    GreedyPolicy,
    TcpSwitchPolicy,
    make_congestion_policy,
)


def lossy(frac=0.5):
    return CongestionSignal(sent=100, delivered=int(100 * (1 - frac)), interval=0.01)


def clean():
    return CongestionSignal(sent=100, delivered=100, interval=0.01)


class TestSignal:
    def test_loss_fraction(self):
        assert lossy(0.3).loss_fraction == pytest.approx(0.3)

    def test_zero_sent_is_no_loss(self):
        assert CongestionSignal(0, 0, 0.01).loss_fraction == 0.0

    def test_more_delivered_than_sent_clamps(self):
        # stale counting can report delivered > sent; clamp at zero loss
        assert CongestionSignal(10, 15, 0.01).loss_fraction == 0.0


class TestGreedy:
    def test_never_delays_or_switches(self):
        p = GreedyPolicy()
        for _ in range(100):
            p.observe(lossy(0.9))
        assert p.batch_delay() == 0.0
        assert not p.should_switch_to_tcp()


class TestBackoff:
    def test_no_delay_under_clean_traffic(self):
        p = BackoffPolicy()
        for _ in range(20):
            p.observe(clean())
        assert p.batch_delay() == 0.0

    def test_delay_grows_under_sustained_loss(self):
        p = BackoffPolicy(threshold=0.1, sustain=3)
        for _ in range(10):
            p.observe(lossy(0.5))
        assert p.batch_delay() > 0

    def test_transient_loss_does_not_trigger(self):
        p = BackoffPolicy(threshold=0.1, sustain=5)
        p.observe(lossy(0.5))
        for _ in range(10):
            p.observe(clean())
        assert p.batch_delay() == 0.0

    def test_delay_decays_after_congestion_clears(self):
        p = BackoffPolicy(threshold=0.1, sustain=2)
        for _ in range(10):
            p.observe(lossy(0.5))
        peak = p.batch_delay()
        for _ in range(30):
            p.observe(clean())
        assert p.batch_delay() < peak
        assert p.batch_delay() == 0.0  # fully recovered (switch back)

    def test_delay_capped(self):
        p = BackoffPolicy(threshold=0.05, sustain=1, max_delay=1e-3)
        for _ in range(100):
            p.observe(lossy(0.9))
        assert p.batch_delay() <= 1e-3

    def test_never_switches_to_tcp(self):
        p = BackoffPolicy()
        for _ in range(100):
            p.observe(lossy(0.9))
        assert not p.should_switch_to_tcp()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(threshold=0.0)


class TestTcpSwitch:
    def test_switches_after_sustained_loss(self):
        p = TcpSwitchPolicy(threshold=0.1, sustain=3)
        assert not p.should_switch_to_tcp()
        for _ in range(10):
            p.observe(lossy(0.5))
        assert p.should_switch_to_tcp()

    def test_does_not_switch_on_transient(self):
        p = TcpSwitchPolicy(threshold=0.1, sustain=5)
        p.observe(lossy(0.9))
        assert not p.should_switch_to_tcp()

    def test_loss_estimate_exposed(self):
        p = TcpSwitchPolicy()
        p.observe(lossy(0.5))
        assert 0 < p.loss_estimate <= 0.5


class TestFactory:
    @pytest.mark.parametrize("mode,cls", [
        ("greedy", GreedyPolicy),
        ("backoff", BackoffPolicy),
        ("tcp_switch", TcpSwitchPolicy),
    ])
    def test_modes(self, mode, cls):
        assert isinstance(make_congestion_policy(mode, 0.1), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_congestion_policy("bogus", 0.1)
