"""Admission control: max-active limit, FIFO queue, caps, drain."""

import pytest

from repro.server import AdmissionController
from repro.server.admission import (
    ADMIT,
    CLIENT_CAP,
    DRAINING,
    FULL,
    QUEUE,
    REJECT,
)


class TestBasicAdmission:
    def test_admits_up_to_max_active(self):
        ctl = AdmissionController(max_active=3, queue_depth=0)
        for key in range(3):
            assert ctl.request(key).admitted
        assert ctl.active == (0, 1, 2)

    def test_overflow_queues_fifo_with_positions(self):
        ctl = AdmissionController(max_active=1, queue_depth=3)
        assert ctl.request("a").admitted
        for expect, key in enumerate(("b", "c", "d"), start=1):
            decision = ctl.request(key)
            assert decision.action == QUEUE
            assert decision.position == expect
        assert ctl.waiting == ("b", "c", "d")

    def test_past_queue_depth_rejects_full(self):
        ctl = AdmissionController(max_active=1, queue_depth=1)
        ctl.request("a")
        ctl.request("b")
        decision = ctl.request("c")
        assert decision.action == REJECT and decision.reason == FULL
        assert ctl.counters.rejected_full == 1

    def test_duplicate_key_is_an_error(self):
        ctl = AdmissionController()
        ctl.request("a")
        with pytest.raises(ValueError):
            ctl.request("a")

    def test_zero_queue_depth_means_reject_immediately(self):
        ctl = AdmissionController(max_active=1, queue_depth=0)
        ctl.request("a")
        assert ctl.request("b").action == REJECT

    @pytest.mark.parametrize("kwargs", [
        {"max_active": 0},
        {"queue_depth": -1},
        {"per_client_max": 0},
    ])
    def test_invalid_limits_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)


class TestPromotion:
    def test_release_promotes_in_fifo_order(self):
        ctl = AdmissionController(max_active=2, queue_depth=4)
        for key in ("a", "b", "c", "d"):
            ctl.request(key)
        assert ctl.release("a") == ["c"]
        assert ctl.release("b") == ["d"]
        assert ctl.active == ("c", "d") and ctl.waiting == ()

    def test_promotion_counts_as_admission(self):
        ctl = AdmissionController(max_active=1, queue_depth=2)
        ctl.request("a")
        ctl.request("b")
        ctl.release("a")
        assert ctl.counters.admitted == 2
        assert ctl.counters.queued == 1

    def test_cancel_removes_waiter_without_promotion(self):
        ctl = AdmissionController(max_active=1, queue_depth=2)
        ctl.request("a")
        ctl.request("b")
        ctl.request("c")
        ctl.cancel("b")
        assert ctl.waiting == ("c",)
        assert ctl.release("a") == ["c"]


class TestPerClientCap:
    def test_cap_counts_active_plus_waiting(self):
        ctl = AdmissionController(max_active=1, queue_depth=4,
                                  per_client_max=2)
        assert ctl.request("a", client="alice").admitted
        assert ctl.request("b", client="alice").action == QUEUE
        decision = ctl.request("c", client="alice")
        assert decision.action == REJECT and decision.reason == CLIENT_CAP
        # A different client is unaffected.
        assert ctl.request("d", client="bob").action == QUEUE

    def test_cap_frees_up_after_release(self):
        ctl = AdmissionController(max_active=4, per_client_max=1)
        ctl.request("a", client="alice")
        assert ctl.request("b", client="alice").action == REJECT
        ctl.release("a")
        assert ctl.request("b", client="alice").admitted


class TestDrain:
    def test_drain_drops_queue_and_rejects_new_requests(self):
        ctl = AdmissionController(max_active=1, queue_depth=4)
        ctl.request("a")
        ctl.request("b")
        ctl.request("c")
        assert ctl.drain() == ["b", "c"]
        assert ctl.waiting == ()
        assert ctl.active == ("a",)  # actives finish on their own
        decision = ctl.request("d")
        assert decision.action == REJECT and decision.reason == DRAINING

    def test_release_during_drain_promotes_nothing(self):
        ctl = AdmissionController(max_active=1, queue_depth=4)
        ctl.request("a")
        ctl.request("b")
        ctl.drain()
        assert ctl.release("a") == []

    def test_first_request_is_admit(self):
        decision = AdmissionController().request("x")
        assert decision.action == ADMIT and decision.admitted
