"""Integration-level tests for the TCP connection state machine."""

import pytest

from repro.simnet.packet import Address
from repro.tcp.connection import TcpConnection, TcpListener
from repro.tcp.options import TcpOptions

from _support import tiny_path


def make_pair(net, sender_opts=None, receiver_opts=None, port=5001, nbytes=None):
    """Listener on b, client on a; optionally auto-write nbytes."""
    delivered = []

    def on_conn(conn):
        conn.on_deliver = delivered.append

    listener = TcpListener(net.sim, net.b, port, options=receiver_opts,
                           on_connection=on_conn)
    client = TcpConnection(net.sim, net.a, net.a.allocate_port(),
                           peer=Address(net.b.name, port), options=sender_opts)
    if nbytes:
        client.on_established = lambda: client.app_write(nbytes)
    return client, listener, delivered


class TestHandshake:
    def test_connection_establishes(self):
        net = tiny_path()
        client, listener, _ = make_pair(net)
        client.connect()
        net.sim.run(until=1.0)
        assert client.state == "established"
        server = next(iter(listener.connections.values()))
        assert server.state in ("established", "syn_rcvd")

    def test_handshake_rtt_sampled(self):
        net = tiny_path(delay=5e-3)  # RTT 20 ms
        client, _, _ = make_pair(net)
        client.connect()
        net.sim.run(until=1.0)
        assert client.rtt.samples == 1
        assert client.rtt.srtt == pytest.approx(0.02, rel=0.1)

    def test_option_negotiation_both_enabled(self):
        net = tiny_path()
        opts = TcpOptions(window_scaling=True, sack=True)
        client, listener, _ = make_pair(net, opts, opts)
        client.connect()
        net.sim.run(until=1.0)
        assert client.eff_window_scaling
        assert client.eff_sack
        server = next(iter(listener.connections.values()))
        assert server.eff_window_scaling

    def test_option_negotiation_one_side_disables(self):
        net = tiny_path()
        client, _, _ = make_pair(
            net,
            TcpOptions(window_scaling=True, sack=True),
            TcpOptions(window_scaling=False, sack=False),
        )
        client.connect()
        net.sim.run(until=1.0)
        assert not client.eff_window_scaling
        assert not client.eff_sack

    def test_connect_twice_rejected(self):
        net = tiny_path()
        client, _, _ = make_pair(net)
        client.connect()
        with pytest.raises(RuntimeError):
            client.connect()

    def test_stray_non_syn_ignored_by_listener(self):
        net = tiny_path()
        listener = TcpListener(net.sim, net.b, 5001)
        from repro.simnet.packet import tcp_frame
        from repro.tcp.segments import Segment
        frame = tcp_frame(Address("a", 9), Address("b", 5001), Segment(ack=5), 0)
        net.b.receive(frame)
        assert not listener.connections


class TestDataTransfer:
    def test_small_transfer_delivers_all_bytes(self):
        net = tiny_path()
        client, _, delivered = make_pair(net, nbytes=100_000)
        client.connect()
        net.sim.run(until=10.0, stop_when=lambda: sum(delivered) >= 100_000)
        assert sum(delivered) == 100_000
        assert client.all_acked or client.flight_size >= 0

    def test_transfer_faster_than_stop_and_wait(self):
        """Pipelining: a 1 MB transfer at RTT 4 ms should take far less
        than the ~2.9 s a one-segment-per-RTT protocol would need."""
        net = tiny_path()
        client, _, delivered = make_pair(net, nbytes=1_000_000)
        client.connect()
        net.sim.run(until=10.0, stop_when=lambda: sum(delivered) >= 1_000_000)
        assert sum(delivered) == 1_000_000
        assert net.sim.now < 1.0

    def test_sender_respects_unscaled_window(self):
        """Without LWE, flight size never exceeds 64 KiB."""
        net = tiny_path(delay=20e-3)
        opts = TcpOptions(window_scaling=False)
        client, _, delivered = make_pair(net, opts, opts, nbytes=500_000)
        client.connect()
        max_flight = 0
        while net.sim.step():
            max_flight = max(max_flight, client.flight_size)
            if sum(delivered) >= 500_000 or net.sim.now > 20:
                break
        assert sum(delivered) == 500_000
        assert max_flight <= 65535

    def test_no_lwe_throughput_is_window_limited(self):
        """64 KiB / 80 ms RTT ~ 6.5 Mb/s even on a 100 Mb/s link."""
        net = tiny_path(delay=20e-3)  # RTT 80 ms
        opts = TcpOptions(window_scaling=False)
        client, _, delivered = make_pair(net, opts, opts, nbytes=2_000_000)
        client.connect()
        net.sim.run(until=60.0, stop_when=lambda: sum(delivered) >= 2_000_000)
        throughput = 2_000_000 * 8 / net.sim.now
        assert throughput < 9e6

    def test_lwe_throughput_beats_unscaled_on_fat_pipe(self):
        results = {}
        for scaling in (False, True):
            net = tiny_path(delay=20e-3, queue_bytes=1 << 20)
            opts = TcpOptions(window_scaling=scaling, recv_buffer=1 << 21)
            client, _, delivered = make_pair(net, opts, opts, nbytes=4_000_000)
            client.connect()
            net.sim.run(until=60.0, stop_when=lambda d=delivered: sum(d) >= 4_000_000)
            results[scaling] = 4_000_000 * 8 / net.sim.now
        assert results[True] > 2.5 * results[False]


class TestLossRecovery:
    def test_recovers_from_random_loss(self):
        net = tiny_path(loss_rate=0.01)
        client, _, delivered = make_pair(net, nbytes=500_000)
        client.connect()
        net.sim.run(until=60.0, stop_when=lambda: sum(delivered) >= 500_000)
        assert sum(delivered) == 500_000
        assert client.stats.retransmitted_segments > 0

    def test_fast_retransmit_used_for_isolated_loss(self):
        net = tiny_path(loss_rate=0.005)
        client, _, delivered = make_pair(net, nbytes=1_000_000)
        client.connect()
        net.sim.run(until=60.0, stop_when=lambda: sum(delivered) >= 1_000_000)
        assert sum(delivered) == 1_000_000
        assert client.stats.fast_retransmits > 0

    def test_sack_retransmissions_track_actual_losses(self):
        """With SACK, retransmitted volume stays near the lost volume
        (no go-back-N style resending of delivered data)."""
        for seed in (1, 5, 9):
            net = tiny_path(loss_rate=0.02, seed=seed)
            opts = TcpOptions(sack=True)
            client, _, delivered = make_pair(net, opts, opts, nbytes=1_000_000)
            client.connect()
            net.sim.run(until=120.0, stop_when=lambda d=delivered: sum(d) >= 1_000_000)
            assert sum(delivered) == 1_000_000
            # 2% loss -> lost volume ~20 KB; allow generous headroom but
            # far below the ~600 KB a broken hole-scan would resend.
            assert client.stats.retransmitted_bytes < 120_000

    def test_sack_no_worse_timeouts_than_reno(self):
        """Across seeds, SACK recovery needs at most as many timeouts."""
        totals = {False: 0, True: 0}
        for sack in (False, True):
            for seed in (1, 5, 9):
                net = tiny_path(loss_rate=0.03, seed=seed)
                opts = TcpOptions(sack=sack)
                client, _, delivered = make_pair(net, opts, opts, nbytes=500_000)
                client.connect()
                net.sim.run(until=120.0,
                            stop_when=lambda d=delivered: sum(d) >= 500_000)
                assert sum(delivered) == 500_000
                totals[sack] += client.stats.timeouts
        assert totals[True] <= totals[False]

    def test_timeout_recovery_on_heavy_loss(self):
        net = tiny_path(loss_rate=0.2, seed=2)
        client, _, delivered = make_pair(net, nbytes=50_000)
        client.connect()
        net.sim.run(until=300.0, stop_when=lambda: sum(delivered) >= 50_000)
        assert sum(delivered) == 50_000
        assert client.stats.timeouts > 0

    def test_syn_retransmitted_on_loss(self):
        net = tiny_path(loss_rate=1.0, seed=0)
        client, _, _ = make_pair(net)
        client.connect()
        net.sim.run(until=3.5)
        assert client.stats.segments_sent >= 2  # original + >=1 retry


class TestDelayedAck:
    def test_delayed_ack_halves_ack_count(self):
        counts = {}
        for delayed in (False, True):
            net = tiny_path()
            opts = TcpOptions(delayed_ack=delayed)
            client, listener, delivered = make_pair(net, opts, opts, nbytes=200_000)
            client.connect()
            net.sim.run(until=10.0, stop_when=lambda d=delivered: sum(d) >= 200_000)
            server = next(iter(listener.connections.values()))
            counts[delayed] = server.stats.acks_sent
        assert counts[True] < counts[False]

    def test_delack_timer_flushes_odd_segment(self):
        """A lone segment is still acked within the delack timeout."""
        net = tiny_path()
        client, listener, delivered = make_pair(net, nbytes=1000)  # single segment
        client.connect()
        net.sim.run(until=5.0)
        assert sum(delivered) == 1000
        assert client.all_acked


class TestStats:
    def test_wire_bytes_include_headers(self):
        net = tiny_path()
        client, _, delivered = make_pair(net, nbytes=14600)  # 10 segments
        client.connect()
        net.sim.run(until=5.0)
        assert client.stats.wire_bytes_sent >= 14600 + 11 * 40

    def test_close_releases_port(self):
        net = tiny_path()
        client, listener, _ = make_pair(net)
        client.connect()
        net.sim.run(until=1.0)
        port = client.local.port
        client.close()
        # Port can be rebound
        TcpConnection(net.sim, net.a, port, peer=Address("b", 5001))
