"""DES server acceptance: 8 concurrent transfers, admission + fairness.

The ISSUE's deterministic acceptance criterion: at least 8 concurrent
transfers against max-active 4, the excess queued and later run, every
transfer byte-complete, and Jain's fairness index over per-transfer
throughputs >= 0.95.
"""

import pytest

from repro.core.config import FobsConfig
from repro.server import SimTransferSpec, run_sim_server
from repro.simnet import short_haul

CONFIG = FobsConfig(ack_frequency=16)


def eight_spec_workload():
    return [SimTransferSpec(nbytes=400_000, arrival=0.002 * i,
                            client=f"client-{i % 4}")
            for i in range(8)]


class TestAcceptance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sim_server(short_haul(seed=11), eight_spec_workload(),
                              config=CONFIG, max_active=4, queue_depth=8,
                              rate_budget_bps=60e6)

    def test_all_eight_byte_complete(self, result):
        assert len(result.completed) == 8
        assert result.all_ok
        assert result.rejected == []

    def test_excess_queued_then_promoted(self, result):
        assert result.peak_active == 4
        assert len(result.queued_ever) == 4
        promoted = [e.index for e in result.events
                    if e.event == "admitted" and e.detail == "from queue"]
        assert sorted(promoted) == sorted(result.queued_ever)
        # FIFO: promotions happen in arrival (queueing) order.
        assert promoted == result.queued_ever

    def test_fairness_meets_bar(self, result):
        assert result.jain_fairness() >= 0.95

    def test_counters_match_timeline(self, result):
        assert result.counters.admitted == 8
        assert result.counters.queued == 4
        assert result.counters.rejected == 0


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        runs = [
            run_sim_server(short_haul(seed=3), eight_spec_workload(),
                           config=CONFIG, max_active=4, queue_depth=8,
                           rate_budget_bps=60e6)
            for _ in range(2)
        ]
        assert runs[0].events == runs[1].events
        assert ([s.throughput_bps for s in runs[0].completed]
                == [s.throughput_bps for s in runs[1].completed])


class TestAdmissionPolicies:
    def test_queue_overflow_rejects(self):
        specs = [SimTransferSpec(nbytes=200_000, arrival=0.001 * i)
                 for i in range(6)]
        result = run_sim_server(short_haul(seed=5), specs, config=CONFIG,
                                max_active=2, queue_depth=2)
        assert len(result.rejected) == 2
        assert result.counters.rejected_full == 2
        assert result.all_ok  # the admitted/queued six-minus-two finish

    def test_per_client_cap_rejects_third_request(self):
        specs = [SimTransferSpec(nbytes=200_000, arrival=0.001 * i,
                                 client="hog")
                 for i in range(3)]
        result = run_sim_server(short_haul(seed=5), specs, config=CONFIG,
                                max_active=2, queue_depth=4,
                                per_client_max=2)
        assert result.rejected == [2]
        assert result.counters.rejected_client_cap == 1

    def test_rate_cap_respected_under_budget(self):
        specs = [
            SimTransferSpec(nbytes=400_000, rate_cap_bps=5e6),
            SimTransferSpec(nbytes=400_000),
        ]
        result = run_sim_server(short_haul(seed=7), specs, config=CONFIG,
                                max_active=2, rate_budget_bps=80e6)
        assert result.all_ok
        capped, free = result.stats
        # The capped flow paces near its 5 Mb/s demand; the free flow
        # takes the surplus and finishes far faster.
        assert capped.throughput_bps < 7e6
        assert free.throughput_bps > 3 * capped.throughput_bps

    def test_completion_speeds_up_survivors(self):
        """Max-min re-feeds pacing mid-transfer: a lone big transfer
        overlapping a short one speeds up after the short one ends."""
        specs = [
            SimTransferSpec(nbytes=2_000_000),
            SimTransferSpec(nbytes=100_000),
        ]
        result = run_sim_server(short_haul(seed=9), specs, config=CONFIG,
                                max_active=2, rate_budget_bps=60e6)
        assert result.all_ok
        big, small = result.stats
        # The big transfer averaged more than the 30 Mb/s half-budget
        # because it ran solo (at ~60) after the small one finished.
        assert big.throughput_bps > 31e6
