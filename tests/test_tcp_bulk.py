"""Tests for the bulk TCP transfer harness."""

import pytest

from repro.tcp import TcpOptions, run_bulk_transfer

from _support import tiny_path


class TestBulkTransfer:
    def test_completes_and_reports(self):
        net = tiny_path()
        res = run_bulk_transfer(net, 500_000)
        assert res.completed
        assert res.nbytes == 500_000
        assert 0 < res.percent_of_bottleneck <= 100
        assert res.lwe_negotiated

    def test_throughput_consistent_with_duration(self):
        net = tiny_path()
        res = run_bulk_transfer(net, 500_000)
        assert res.throughput_bps == pytest.approx(500_000 * 8 / res.duration)

    def test_no_lwe_flag_reported(self):
        net = tiny_path()
        opts = TcpOptions(window_scaling=False)
        res = run_bulk_transfer(net, 200_000, sender_options=opts,
                                receiver_options=opts)
        assert not res.lwe_negotiated

    def test_time_limit_reports_incomplete(self):
        net = tiny_path(bandwidth_bps=1e5)
        res = run_bulk_transfer(net, 1_000_000, time_limit=1.0)
        assert not res.completed

    def test_invalid_nbytes_rejected(self):
        with pytest.raises(ValueError):
            run_bulk_transfer(tiny_path(), 0)

    def test_lossy_path_completes_with_retransmissions(self):
        net = tiny_path(loss_rate=0.02, seed=1)
        res = run_bulk_transfer(net, 500_000)
        assert res.completed
        assert res.sender_stats.retransmitted_segments > 0

    def test_str_rendering(self):
        res = run_bulk_transfer(tiny_path(), 100_000)
        out = str(res)
        assert "Mb/s" in out and "%" in out
