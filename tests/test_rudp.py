"""Tests for the Reliable Blast UDP baseline."""

import pytest

from repro.rudp import RudpConfig, run_rudp_transfer

from _support import tiny_path


class TestRudp:
    def test_clean_path_single_round(self):
        net = tiny_path()
        res = run_rudp_transfer(net, 500_000)
        assert res.completed
        assert res.rounds == 1
        assert res.wasted_fraction == 0.0

    def test_lossy_path_multiple_rounds(self):
        net = tiny_path(loss_rate=0.05, seed=1)
        res = run_rudp_transfer(net, 500_000)
        assert res.completed
        assert res.rounds >= 2
        assert res.packets_sent > res.npackets

    def test_heavy_loss_still_completes(self):
        net = tiny_path(loss_rate=0.3, seed=2)
        res = run_rudp_transfer(net, 200_000, time_limit=300.0)
        assert res.completed

    def test_rate_limited_blast(self):
        net = tiny_path()
        cfg = RudpConfig(send_rate_bps=10e6)  # 1/10 of the link
        res = run_rudp_transfer(net, 500_000, cfg)
        assert res.completed
        assert res.percent_of_bottleneck < 15

    def test_waste_roughly_tracks_loss(self):
        net = tiny_path(loss_rate=0.1, seed=3)
        res = run_rudp_transfer(net, 500_000)
        # each loss costs exactly one retransmission per round
        assert 0.03 < res.wasted_fraction < 0.4

    def test_npackets_validation(self):
        with pytest.raises(ValueError):
            RudpConfig().npackets(0)

    def test_throughput_accounting(self):
        net = tiny_path()
        res = run_rudp_transfer(net, 300_000)
        assert res.throughput_bps == pytest.approx(300_000 * 8 / res.duration)
