"""Tests for DRS-style receive-buffer auto-tuning (refs [12]/[16])."""

import pytest

from repro.tcp import TcpOptions, run_bulk_transfer
from repro.tcp.connection import TcpConnection, TcpListener
from repro.simnet.packet import Address

from _support import tiny_path


def run(net, nbytes, opts, time_limit=120.0):
    return run_bulk_transfer(net, nbytes, sender_options=opts,
                             receiver_options=opts, time_limit=time_limit)


class TestAutotune:
    def test_starts_small_and_grows(self):
        net = tiny_path(delay=20e-3)  # RTT 80 ms, BDP ~ 1 MB
        opts = TcpOptions(autotune_buffers=True, recv_buffer=1 << 21,
                          autotune_initial_buffer=32 * 1024)
        delivered = []
        tuned = []

        def on_conn(conn):
            def deliver(n):
                delivered.append(n)
                tuned.append(conn._tuned_buffer)
            conn.on_deliver = deliver

        listener = TcpListener(net.sim, net.b, 5001, options=opts,
                               on_connection=on_conn)
        client = TcpConnection(net.sim, net.a, net.a.allocate_port(),
                               peer=Address(net.b.name, 5001), options=opts)
        client.on_established = lambda: client.app_write(4_000_000)
        client.connect()
        net.sim.run(until=60.0, stop_when=lambda: sum(delivered) >= 4_000_000)
        assert sum(delivered) == 4_000_000
        assert tuned[0] <= 64 * 1024
        assert tuned[-1] > 256 * 1024  # grew toward the BDP

    def test_autotuned_matches_manually_tuned_throughput(self):
        """Auto-tuning reaches within ~25% of a hand-tuned big buffer."""
        manual = run(tiny_path(delay=20e-3, queue_bytes=1 << 20), 8_000_000,
                     TcpOptions(recv_buffer=1 << 21))
        auto = run(tiny_path(delay=20e-3, queue_bytes=1 << 20), 8_000_000,
                   TcpOptions(autotune_buffers=True, recv_buffer=1 << 21,
                              autotune_initial_buffer=64 * 1024))
        assert auto.completed and manual.completed
        assert auto.throughput_bps > 0.75 * manual.throughput_bps

    def test_autotune_beats_small_static_buffer(self):
        """The point of refs [12]/[16]: no manual tuning, much better
        than the untouched default."""
        static = run(tiny_path(delay=20e-3), 4_000_000,
                     TcpOptions(recv_buffer=64 * 1024))
        auto = run(tiny_path(delay=20e-3), 4_000_000,
                   TcpOptions(autotune_buffers=True, recv_buffer=1 << 21,
                              autotune_initial_buffer=64 * 1024))
        assert auto.throughput_bps > 2 * static.throughput_bps

    def test_capped_by_max_buffer(self):
        net = tiny_path(delay=20e-3)
        opts = TcpOptions(autotune_buffers=True, recv_buffer=128 * 1024,
                          autotune_initial_buffer=32 * 1024)
        caps = []

        def on_conn(conn):
            conn.on_deliver = lambda n: caps.append(conn._tuned_buffer)

        listener = TcpListener(net.sim, net.b, 5001, options=opts,
                               on_connection=on_conn)
        client = TcpConnection(net.sim, net.a, net.a.allocate_port(),
                               peer=Address(net.b.name, 5001), options=opts)
        client.on_established = lambda: client.app_write(2_000_000)
        client.connect()
        net.sim.run(until=60.0)
        assert max(caps) <= 128 * 1024

    def test_useless_without_window_scaling(self):
        """Without LWE the advertisement caps at 64 KiB regardless."""
        net = tiny_path(delay=20e-3)
        opts = TcpOptions(autotune_buffers=True, window_scaling=False,
                          recv_buffer=1 << 21)
        res = run(net, 2_000_000, opts)
        assert res.completed
        assert res.throughput_bps < 9e6  # still window-limited

    def test_validation(self):
        with pytest.raises(ValueError):
            TcpOptions(autotune_initial_buffer=100)
