"""Tests for the queue disciplines."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simnet.packet import Address, udp_frame
from repro.simnet.queues import DropTailQueue, REDQueue

A, B = Address("a", 1), Address("b", 2)


def frame(nbytes: int):
    return udp_frame(A, B, None, nbytes - 28)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        frames = [frame(100) for _ in range(5)]
        for f in frames:
            assert q.try_enqueue(f)
        assert [q.dequeue() for _ in range(5)] == frames

    def test_rejects_when_bytes_exceeded(self):
        q = DropTailQueue(250)
        assert q.try_enqueue(frame(100))
        assert q.try_enqueue(frame(100))
        assert not q.try_enqueue(frame(100))
        assert q.stats.dropped == 1

    def test_frame_capacity_limit(self):
        q = DropTailQueue(1 << 20, capacity_frames=2)
        assert q.try_enqueue(frame(100))
        assert q.try_enqueue(frame(100))
        assert not q.try_enqueue(frame(100))

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(100).dequeue() is None

    def test_bytes_tracking(self):
        q = DropTailQueue(10_000)
        q.try_enqueue(frame(100))
        q.try_enqueue(frame(200))
        assert q.bytes_queued == 300
        q.dequeue()
        assert q.bytes_queued == 200

    def test_would_accept_matches_try_enqueue(self):
        q = DropTailQueue(150)
        f = frame(100)
        assert q.would_accept(f)
        q.try_enqueue(f)
        assert not q.would_accept(frame(100))

    def test_peak_bytes_statistic(self):
        q = DropTailQueue(10_000)
        q.try_enqueue(frame(100))
        q.try_enqueue(frame(100))
        q.dequeue()
        q.dequeue()
        assert q.stats.peak_bytes == 200

    def test_drop_rate(self):
        q = DropTailQueue(100)
        q.try_enqueue(frame(100))
        q.try_enqueue(frame(100))  # dropped
        assert q.stats.drop_rate() == pytest.approx(0.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    @given(sizes=st.lists(st.integers(min_value=29, max_value=1500),
                          min_size=1, max_size=100))
    def test_property_byte_conservation(self, sizes):
        """enqueued bytes == dequeued bytes + still-queued bytes."""
        q = DropTailQueue(8000)
        for s in sizes:
            q.try_enqueue(frame(s))
        drained = 0
        while True:
            f = q.dequeue()
            if f is None:
                break
            drained += f.size_bytes
        assert q.stats.bytes_enqueued == drained
        assert q.bytes_queued == 0


class TestRed:
    def test_accepts_below_min_threshold(self):
        q = REDQueue(10_000, min_thresh_bytes=5_000, max_thresh_bytes=8_000,
                     rng=np.random.default_rng(0))
        for _ in range(10):
            assert q.try_enqueue(frame(128))

    def test_drops_probabilistically_between_thresholds(self):
        q = REDQueue(100_000, min_thresh_bytes=1_000, max_thresh_bytes=10_000,
                     max_p=0.5, weight=0.5, rng=np.random.default_rng(0))
        accepted = sum(q.try_enqueue(frame(500)) for _ in range(200))
        assert 0 < accepted < 200

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            REDQueue(1000, min_thresh_bytes=900, max_thresh_bytes=800)

    def test_red_counts_early_drops(self):
        q = REDQueue(100_000, min_thresh_bytes=500, max_thresh_bytes=2_000,
                     max_p=1.0, weight=1.0, rng=np.random.default_rng(1))
        for _ in range(50):
            q.try_enqueue(frame(500))
        assert q.stats.dropped > 0
