"""Admission under a burst of simultaneous arrivals.

Regression pins for the properties the load-test fleet leans on: when
many requests land at the same instant, the bounded queue keeps strict
FIFO order (admissions, queue positions, and later promotions all
follow arrival order) and the per-client cap is enforced across
active + queued slots, not just actives.
"""

from repro.core.config import FobsConfig
from repro.server import SimTransferSpec, run_sim_server
from repro.server.admission import (
    ADMIT,
    CLIENT_CAP,
    FULL,
    QUEUE,
    REJECT,
    AdmissionController,
)
from repro.simnet import short_haul

CONFIG = FobsConfig(ack_frequency=16)


class TestControllerBurst:
    def test_fifo_order_under_burst(self):
        adm = AdmissionController(max_active=3, queue_depth=4)
        decisions = [adm.request(i) for i in range(10)]

        assert [d.action for d in decisions[:3]] == [ADMIT] * 3
        assert [d.action for d in decisions[3:7]] == [QUEUE] * 4
        # Queue positions are 1-based and strictly in arrival order.
        assert [d.position for d in decisions[3:7]] == [1, 2, 3, 4]
        assert [d.action for d in decisions[7:]] == [REJECT] * 3
        assert all(d.reason == FULL for d in decisions[7:])
        assert list(adm.waiting) == [3, 4, 5, 6]

        # Releases promote strictly FIFO: 3, then 4, then 5, then 6.
        promoted = []
        for done in range(3):
            promoted.extend(adm.release(done))
        assert promoted == [3, 4, 5]
        assert list(adm.waiting) == [6]

    def test_per_client_cap_spans_active_and_queued(self):
        adm = AdmissionController(max_active=2, queue_depth=4,
                                  per_client_max=2)
        assert adm.request("a1", client="alice").action == ADMIT
        assert adm.request("a2", client="alice").action == ADMIT
        # Third request from the same client: the cap counts the two
        # active slots, so it cannot even queue.
        third = adm.request("a3", client="alice")
        assert third.action == REJECT
        assert third.reason == CLIENT_CAP
        # Another client still queues normally.
        assert adm.request("b1", client="bob").action == QUEUE
        # A queued slot counts against the cap too.
        assert adm.request("b2", client="bob").action == QUEUE
        b3 = adm.request("b3", client="bob")
        assert b3.action == REJECT
        assert b3.reason == CLIENT_CAP
        assert adm.counters.rejected_client_cap == 2

    def test_cancel_preserves_fifo_of_remaining(self):
        adm = AdmissionController(max_active=1, queue_depth=3)
        for key in ("a", "b", "c", "d"):
            adm.request(key)
        assert list(adm.waiting) == ["b", "c", "d"]
        adm.cancel("c")
        assert list(adm.waiting) == ["b", "d"]
        assert adm.release("a") == ["b"]
        assert adm.release("b") == ["d"]


class TestServerBurst:
    """The same properties end-to-end through the DES server."""

    def _burst(self, n, client=None):
        return [SimTransferSpec(nbytes=96_000, arrival=0.0,
                                client=client or f"c{i}")
                for i in range(n)]

    def test_simultaneous_burst_fifo(self):
        result = run_sim_server(
            short_haul(seed=5), self._burst(10), config=CONFIG,
            max_active=3, queue_depth=4, rate_budget_bps=60e6)

        admitted_first = [e.index for e in result.events
                          if e.event == "admitted" and not e.detail]
        assert admitted_first == [0, 1, 2]
        assert result.queued_ever == [3, 4, 5, 6]
        assert result.rejected == [7, 8, 9]
        # Promotions drain the queue in exactly arrival order.
        promoted = [e.index for e in result.events
                    if e.event == "admitted" and e.detail == "from queue"]
        assert promoted == [3, 4, 5, 6]
        assert len(result.completed) == 7
        assert result.counters.rejected_full == 3

    def test_simultaneous_burst_per_client_cap(self):
        result = run_sim_server(
            short_haul(seed=5), self._burst(6, client="greedy"),
            config=CONFIG, max_active=3, queue_depth=8,
            per_client_max=2, rate_budget_bps=60e6)

        # One client bursting 6 simultaneous requests holds at most 2
        # slots; the rest are rejected with the cap reason, regardless
        # of free active/queue capacity.
        assert len(result.completed) == 2
        assert result.rejected == [2, 3, 4, 5]
        assert result.counters.rejected_client_cap == 4
        assert result.counters.rejected_full == 0

    def test_queue_wait_times_recorded(self):
        result = run_sim_server(
            short_haul(seed=5), self._burst(5), config=CONFIG,
            max_active=2, queue_depth=8, rate_budget_bps=60e6)
        # Immediate admits wait ~0; promoted ones wait strictly longer.
        assert result.wait_times[0] == 0.0
        assert result.wait_times[1] == 0.0
        for index in (2, 3, 4):
            assert result.wait_times[index] > 0.0
