"""Daemon-side verify + storage-chaos tests, and the CLI contracts.

The daemon has its own copies of the verify/demote/storage-fault paths
(shared-socket demux, one selector thread), so the chaos matrix over
``runtime.files`` does not cover it.  These tests prove:

* VERIFY negotiation works through the daemon for both directions;
* a faulty daemon disk (torn writes) self-repairs on a verified push;
* an injected EIO/ENOSPC fails *one transfer* with a typed event, not
  the daemon — it keeps serving;
* ``repro fetch`` emits the machine-readable ``VERIFY_FAILED`` line and
  a distinct exit code when integrity retries are exhausted;
* ``repro verify`` audits a file against a sidecar manifest.
"""

import threading

import numpy as np
import pytest

from repro.chaos import FaultyStore, disk_full_at, torn_writes
from repro.core.config import FobsConfig
from repro.core.manifest import ChunkManifest
from repro.runtime.files import send_file
from repro.runtime.supervisor import RetryPolicy
from repro.server import ObjectServer, fetch_file
from repro.server.cli import main

pytestmark = pytest.mark.loopback

CONFIG = FobsConfig(ack_frequency=16, stall_timeout=0.3,
                    stall_abort_after=2.0, receiver_idle_timeout=2.0)


class RunningServer:
    """Start an ObjectServer on a thread; drain and join on exit."""

    def __init__(self, root, **kwargs):
        kwargs.setdefault("config", CONFIG)
        kwargs.setdefault("bind", "127.0.0.1")
        self.server = ObjectServer(str(root), port=0, **kwargs)
        self.snapshot = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.snapshot = self.server.serve_forever(self._ready)

    def __enter__(self):
        self._ready = threading.Event()
        self._thread.start()
        assert self._ready.wait(5), "server failed to start"
        return self

    def __exit__(self, *exc):
        self.server.request_drain()
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            self.server.stop()
            self._thread.join(timeout=5)

    @property
    def port(self):
        return self.server.port


@pytest.fixture
def objects(tmp_path):
    root = tmp_path / "objects"
    root.mkdir()
    rng = np.random.default_rng(4)
    (root / "a.bin").write_bytes(
        rng.integers(0, 256, 200_000, dtype=np.uint8).tobytes())
    return root


def push(src, port, attempts=3, verify=True):
    return send_file(str(src), "127.0.0.1", port, CONFIG, timeout=30.0,
                     resume=True, max_attempts=attempts,
                     policy=RetryPolicy(max_attempts=attempts,
                                        backoff_base=0.05, jitter=0.0),
                     verify=verify)


def pushed_blob(root):
    pushed = sorted(p for p in root.iterdir() if p.name.startswith("push-"))
    assert len(pushed) == 1, f"expected one pushed object, got {pushed}"
    return pushed[0].read_bytes()


class TestDaemonVerify:
    def test_verified_fetch_round_trip(self, objects, tmp_path):
        with RunningServer(objects) as running:
            result = fetch_file("a.bin", "127.0.0.1", running.port,
                                str(tmp_path / "out.bin"), config=CONFIG,
                                timeout=30, verify=True)
        assert result.completed
        assert ((tmp_path / "out.bin").read_bytes()
                == (objects / "a.bin").read_bytes())
        assert result.verify_seconds >= 0.0
        assert result.packets_demoted == 0

    def test_verified_push_round_trip(self, objects, tmp_path):
        src = tmp_path / "src.bin"
        blob = np.random.default_rng(8).integers(
            0, 256, 150_000, dtype=np.uint8).tobytes()
        src.write_bytes(blob)
        with RunningServer(objects) as running:
            result = push(src, running.port)
        assert result.completed
        assert pushed_blob(objects) == blob

    def test_push_self_repairs_on_torn_daemon_disk(self, objects, tmp_path):
        """The daemon's disk tears writes; verify-on-complete demotes
        the damage and the sender's retries converge byte-identical."""
        src = tmp_path / "src.bin"
        blob = np.random.default_rng(9).integers(
            0, 256, 120_000, dtype=np.uint8).tobytes()
        src.write_bytes(blob)
        store = FaultyStore(torn_writes(0.10), seed=9)
        with RunningServer(objects, opener=store.open) as running:
            result = push(src, running.port, attempts=8)
        assert result.completed, result.failure_reason
        assert pushed_blob(objects) == blob
        assert store.stats.torn_writes > 0  # chaos actually fired

    def test_injected_disk_error_fails_transfer_not_daemon(
        self, objects, tmp_path
    ):
        """EIO at a scheduled write op: the push attempt fails with a
        storage-fault reason, the retry succeeds (transient), and the
        daemon keeps serving fetches afterwards."""
        src = tmp_path / "src.bin"
        blob = np.random.default_rng(10).integers(
            0, 256, 100_000, dtype=np.uint8).tobytes()
        src.write_bytes(blob)
        store = FaultyStore(disk_full_at(3, "EIO"), seed=10)
        with RunningServer(objects, opener=store.open) as running:
            result = push(src, running.port, attempts=4)
            assert result.completed, result.failure_reason
            assert result.attempts >= 2  # first attempt ate the EIO
            assert store.stats.errors_injected == 1
            # Daemon alive and serving.
            after = fetch_file("a.bin", "127.0.0.1", running.port,
                               str(tmp_path / "after.bin"), config=CONFIG,
                               timeout=30)
            assert after.completed
        assert pushed_blob(objects) == blob

    def test_legacy_noverify_push_still_lands(self, objects, tmp_path):
        src = tmp_path / "src.bin"
        blob = np.random.default_rng(11).integers(
            0, 256, 80_000, dtype=np.uint8).tobytes()
        src.write_bytes(blob)
        with RunningServer(objects) as running:
            result = push(src, running.port, verify=False)
        assert result.completed
        assert pushed_blob(objects) == blob


class TestFetchCliVerifyFailed:
    def _fail_result(self, reason):
        from repro.runtime.files import FileTransferResult

        return FileTransferResult(
            path="out.bin", nbytes=0, duration=0.1, throughput_bps=0.0,
            crc_ok=False, completed=False, failure_reason=reason,
            attempts=3, packets_demoted=7)

    def test_verify_exhaustion_prints_machine_readable_line(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "repro.server.cli.fetch_file",
            lambda *a, **k: self._fail_result(
                "verify failed: 7 corrupt chunk(s) after final attempt"))
        rc = main(["fetch", "a.bin", "--port", "1", "--output", "out.bin",
                   "--quiet"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "fetch VERIFY_FAILED" in out
        assert "name=a.bin" in out
        assert "packets_demoted=7" in out

    def test_crc_mismatch_also_counts_as_integrity_failure(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "repro.server.cli.fetch_file",
            lambda *a, **k: self._fail_result(
                "CRC mismatch after reassembly; all packets demoted"))
        rc = main(["fetch", "a.bin", "--port", "1", "--output", "out.bin",
                   "--quiet"])
        assert rc == 3
        assert "fetch VERIFY_FAILED" in capsys.readouterr().out

    def test_ordinary_failure_keeps_plain_exit_one(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.server.cli.fetch_file",
            lambda *a, **k: self._fail_result("connection refused"))
        rc = main(["fetch", "a.bin", "--port", "1", "--output", "out.bin",
                   "--quiet"])
        assert rc == 1
        assert "VERIFY_FAILED" not in capsys.readouterr().out

    def test_no_verify_flag_reaches_fetch_file(self, monkeypatch):
        seen = {}

        def spy(*args, **kwargs):
            seen.update(kwargs)
            return self._fail_result("x")

        monkeypatch.setattr("repro.server.cli.fetch_file", spy)
        main(["fetch", "a.bin", "--port", "1", "--output", "o", "--quiet",
              "--no-verify"])
        assert seen["verify"] is False
        main(["fetch", "a.bin", "--port", "1", "--output", "o", "--quiet"])
        assert seen["verify"] is True


class TestVerifyCli:
    def make(self, tmp_path, nbytes=50_000):
        data = np.random.default_rng(13).integers(
            0, 256, nbytes, dtype=np.uint8).tobytes()
        obj = tmp_path / "obj.bin"
        obj.write_bytes(data)
        man = tmp_path / "obj.manifest"
        ChunkManifest.from_data(data, 1024).save(str(man))
        return obj, man

    def test_clean_file_audits_ok(self, tmp_path, capsys):
        obj, man = self.make(tmp_path)
        rc = main(["verify", str(obj), str(man)])
        assert rc == 0
        assert "verify ok" in capsys.readouterr().out

    def test_corrupt_file_exits_nonzero_with_counts(self, tmp_path, capsys):
        obj, man = self.make(tmp_path)
        blob = bytearray(obj.read_bytes())
        blob[2048] ^= 0x01
        blob[2049] ^= 0x01
        blob[40_000] ^= 0x80
        obj.write_bytes(bytes(blob))
        rc = main(["verify", str(obj), str(man)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "verify CORRUPT" in captured.out
        assert "chunks_corrupt=2" in captured.out
        assert "ranges=2" in captured.out
        assert "corrupt chunks: 2, 39" in captured.err

    def test_truncated_file_is_size_mismatch(self, tmp_path, capsys):
        obj, man = self.make(tmp_path)
        obj.write_bytes(obj.read_bytes()[:10_000])
        rc = main(["verify", str(obj), str(man)])
        assert rc == 1
        assert "size mismatch" in capsys.readouterr().out

    def test_corrupt_manifest_refused(self, tmp_path, capsys):
        obj, man = self.make(tmp_path)
        blob = bytearray(man.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        man.write_bytes(bytes(blob))
        rc = main(["verify", str(obj), str(man)])
        assert rc == 2
        assert "bad manifest" in capsys.readouterr().err
