"""Tests for the per-chunk digest manifest (PROTOCOL.md §10).

The manifest is the trust root for storage-chaos repair: a corrupt
manifest must never demote good data or bless bad data, so beyond the
round-trip/audit behaviour the key property here is that *any*
single-byte flip anywhere in an encoded manifest fails decode loudly
(``ManifestCorrupt``) instead of yielding a usable-but-wrong manifest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.manifest import (
    ALGO_CRC32,
    ALGO_SHA256,
    MANIFEST_HEADER_BYTES,
    ChunkManifest,
    ManifestCorrupt,
    VerifyStats,
    corrupt_ranges,
)

NBYTES = 10_000
PACKET_SIZE = 1024


def blob(seed: int = 11, nbytes: int = NBYTES) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, nbytes, dtype=np.uint8).tobytes()


class TestConstruction:
    def test_from_data_counts_chunks_with_short_tail(self):
        m = ChunkManifest.from_data(blob(), PACKET_SIZE)
        assert m.npackets == 10
        assert m.chunk_length(9) == NBYTES - 9 * PACKET_SIZE
        assert m.chunk_length(0) == PACKET_SIZE
        assert len(m.digests) == 10 * m.digest_size

    def test_from_file_matches_from_data(self, tmp_path):
        data = blob(3)
        path = tmp_path / "obj.bin"
        path.write_bytes(data)
        assert (ChunkManifest.from_file(str(path), PACKET_SIZE)
                == ChunkManifest.from_data(data, PACKET_SIZE))

    def test_empty_object_rejected(self):
        with pytest.raises(ValueError):
            ChunkManifest.from_data(b"", PACKET_SIZE)

    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError):
            ChunkManifest.from_data(blob(), PACKET_SIZE, algo=99)

    @pytest.mark.parametrize("algo", [ALGO_CRC32, ALGO_SHA256])
    def test_both_algorithms_round_trip(self, algo):
        m = ChunkManifest.from_data(blob(), PACKET_SIZE, algo=algo)
        assert ChunkManifest.decode(m.encode()) == m


class TestCodec:
    def test_encode_decode_round_trip(self):
        m = ChunkManifest.from_data(blob(), PACKET_SIZE)
        out = ChunkManifest.decode(m.encode())
        assert out == m
        assert out.encoded_size == MANIFEST_HEADER_BYTES + len(m.digests)

    def test_save_load_round_trip(self, tmp_path):
        m = ChunkManifest.from_data(blob(), PACKET_SIZE)
        path = str(tmp_path / "obj.manifest")
        m.save(path)
        assert ChunkManifest.load(path) == m

    def test_truncated_blob_rejected(self):
        enc = ChunkManifest.from_data(blob(), PACKET_SIZE).encode()
        with pytest.raises(ManifestCorrupt):
            ChunkManifest.decode(enc[:-1])

    def test_short_header_rejected(self):
        with pytest.raises(ManifestCorrupt):
            ChunkManifest.decode(b"\x00" * (MANIFEST_HEADER_BYTES - 1))


class TestVerification:
    def test_clean_object_audits_clean(self):
        data = blob()
        m = ChunkManifest.from_data(data, PACKET_SIZE)
        assert len(m.verify_blob(data)) == 0

    def test_flipped_chunk_detected_and_localised(self):
        data = bytearray(blob())
        m = ChunkManifest.from_data(bytes(data), PACKET_SIZE)
        data[3 * PACKET_SIZE + 7] ^= 0x01
        bad = m.verify_blob(bytes(data))
        assert list(bad) == [3]

    def test_seqs_restricts_the_audit(self):
        data = bytearray(blob())
        m = ChunkManifest.from_data(bytes(data), PACKET_SIZE)
        data[3 * PACKET_SIZE] ^= 0xFF
        assert list(m.verify_blob(bytes(data), seqs=[0, 1, 2])) == []
        assert list(m.verify_blob(bytes(data), seqs=[2, 3, 4])) == [3]

    def test_verify_file_matches_verify_blob(self, tmp_path):
        data = bytearray(blob())
        m = ChunkManifest.from_data(bytes(data), PACKET_SIZE)
        data[0] ^= 0x80
        data[9 * PACKET_SIZE] ^= 0x80
        path = tmp_path / "obj.bin"
        path.write_bytes(bytes(data))
        with open(path, "rb") as fh:
            from_file = list(m.verify_file(fh))
        assert from_file == list(m.verify_blob(bytes(data))) == [0, 9]

    def test_short_file_counts_tail_as_corrupt(self, tmp_path):
        data = blob()
        m = ChunkManifest.from_data(data, PACKET_SIZE)
        path = tmp_path / "obj.bin"
        path.write_bytes(data[:NBYTES - 100])
        with open(path, "rb") as fh:
            assert list(m.verify_file(fh)) == [9]

    def test_check_chunk_bounds(self):
        m = ChunkManifest.from_data(blob(), PACKET_SIZE)
        with pytest.raises(IndexError):
            m.check_chunk(m.npackets, b"x")
        assert not m.check_chunk(0, b"short")

    def test_corrupt_ranges_coalesces_runs(self):
        assert corrupt_ranges([]) == []
        assert corrupt_ranges([4]) == [(4, 1)]
        assert corrupt_ranges([5, 3, 4, 9, 1]) == [(1, 1), (3, 3), (9, 1)]

    def test_verify_stats_merge(self):
        a = VerifyStats(phase="resume", chunks_checked=5, chunks_corrupt=1,
                        ranges_demoted=1, bytes_demoted=1024, duration=0.5,
                        corrupt_seqs=[2])
        b = VerifyStats(phase="complete", chunks_checked=10, corrupt_seqs=[])
        a.merge(b)
        assert a.chunks_checked == 15
        assert a.chunks_corrupt == 1
        assert not a.clean
        assert b.clean


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestOneByteFlipProperty:
    @given(
        seed=st.integers(0, 2**16),
        nbytes=st.integers(1, 4096),
        packet_size=st.sampled_from([64, 256, 1000, 1024]),
        offset_frac=st.floats(0.0, 1.0, exclude_max=True),
        mask=st.integers(1, 255),
    )
    @settings(max_examples=80, deadline=None)
    def test_single_byte_flip_never_decodes_cleanly(
        self, seed, nbytes, packet_size, offset_frac, mask
    ):
        """Any one-byte flip in an encoded manifest is rejected.

        If a flipped manifest decoded successfully it could demote
        intact chunks (wasted re-fetch) or — worse — carry a doctored
        digest that blesses corrupt data.  The whole-frame CRC32 makes
        every single-byte change detectable.
        """
        data = np.random.default_rng(seed).integers(
            0, 256, nbytes, dtype=np.uint8).tobytes()
        enc = bytearray(ChunkManifest.from_data(data, packet_size).encode())
        enc[int(offset_frac * len(enc))] ^= mask
        with pytest.raises(ManifestCorrupt):
            ChunkManifest.decode(bytes(enc))

    @given(seed=st.integers(0, 2**16), extra=st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_trailing_garbage_is_ignored_not_trusted(self, seed, extra):
        """Decode reads exactly the declared blob; suffix bytes after it
        do not change the result (the VERIFY frame may be padded)."""
        data = np.random.default_rng(seed).integers(
            0, 256, 2048, dtype=np.uint8).tobytes()
        m = ChunkManifest.from_data(data, 256)
        enc = m.encode() + bytes(extra)
        assert ChunkManifest.decode(enc) == m
