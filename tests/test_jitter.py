"""Tests for link jitter / packet reordering and protocol robustness."""

import numpy as np
import pytest

from repro.core import run_fobs_transfer
from repro.simnet.engine import Simulator
from repro.simnet.link import DelayLink
from repro.simnet.packet import Address, udp_frame
from repro.simnet.topology import HopSpec, PathSpec, build_path
from repro.tcp import TcpOptions, run_bulk_transfer

from _support import quick_config


def jittery_path(seed=0, jitter=2e-3):
    spec = PathSpec(
        "jit", "a", "b",
        hops=(
            HopSpec(1e8, 1e-3, queue_bytes=1 << 16),
            HopSpec(None, 5e-3, jitter=jitter),
            HopSpec(1e8, 1e-3, queue_bytes=1 << 16),
        ),
        bottleneck_bps=1e8,
    )
    return build_path(spec, seed=seed)


class TestJitterMechanics:
    def test_jitter_reorders_frames(self):
        sim = Simulator()
        link = DelayLink(sim, "j", prop_delay=1e-3, jitter=5e-3,
                         rng=np.random.default_rng(0))
        order = []

        class Sink:
            def receive(self, frame):
                order.append(frame.payload)

        link.connect(Sink())
        for i in range(50):
            link.send(udp_frame(Address("a", 1), Address("b", 2), i, 100))
        sim.run()
        assert sorted(order) == list(range(50))
        assert order != list(range(50))  # actually reordered

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            DelayLink(Simulator(), "j", prop_delay=0.0, jitter=1e-3)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            DelayLink(Simulator(), "j", prop_delay=0.0, jitter=-1.0,
                      rng=np.random.default_rng(0))

    def test_jitter_on_serializing_hop_rejected(self):
        spec = PathSpec("bad", "a", "b",
                        hops=(HopSpec(1e8, 1e-3, jitter=1e-3),))
        with pytest.raises(ValueError):
            build_path(spec)


class TestProtocolRobustness:
    def test_fobs_immune_to_reordering(self):
        """Object-based transfer has no ordering requirement at all:
        heavy reordering costs FOBS essentially nothing."""
        ordered = run_fobs_transfer(jittery_path(jitter=0.0), 1_000_000,
                                    quick_config())
        reordered = run_fobs_transfer(jittery_path(jitter=4e-3), 1_000_000,
                                      quick_config())
        assert reordered.completed
        assert reordered.percent_of_bottleneck > 0.9 * ordered.percent_of_bottleneck

    def test_tcp_penalized_by_reordering(self):
        """Reordering generates duplicate ACKs -> spurious fast
        retransmits -> needless window halvings for TCP."""
        opts = TcpOptions(sack=True)
        reordered = run_bulk_transfer(jittery_path(jitter=4e-3), 2_000_000,
                                      sender_options=opts, receiver_options=opts)
        assert reordered.completed
        assert reordered.sender_stats.fast_retransmits > 0

    def test_fobs_no_duplicate_delivery_under_reordering(self):
        stats = run_fobs_transfer(jittery_path(jitter=4e-3), 500_000,
                                  quick_config())
        assert stats.receiver_stats.packets_new == stats.npackets
