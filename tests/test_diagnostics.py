"""Tests for the loss-cause diagnostics."""

import pytest

import repro.simnet as sn
from repro.analysis.diagnostics import (
    LossBreakdown,
    loss_breakdown,
    recovery_report,
    trace_summary,
)
from repro.core import FobsConfig, run_fobs_transfer
from repro.core.journal import ReceiverJournal
from repro.core.receiver import FobsReceiver
from repro.runtime.supervisor import RetryPolicy, TransferSupervisor
from repro.simnet.trace import Tracer

from _support import quick_config, tiny_path


class TestLossBreakdown:
    def test_clean_run_has_no_losses(self):
        net = tiny_path()
        stats = run_fobs_transfer(net, 300_000, quick_config())
        bd = loss_breakdown(net, stats.receiver_socket_drops)
        assert bd.total == 0
        assert bd.dominant_cause() == "none"

    def test_random_loss_attributed(self):
        net = tiny_path(loss_rate=0.05, seed=1)
        stats = run_fobs_transfer(net, 300_000, quick_config())
        bd = loss_breakdown(net, stats.receiver_socket_drops)
        assert bd.random_losses > 0
        assert bd.dominant_cause() == "random_loss"

    def test_receiver_overflow_attributed(self):
        """F=1 on the PC profile overruns the receiver: drops happen at
        the UDP socket, not in the network."""
        net = sn.short_haul()
        stats = run_fobs_transfer(net, 1_000_000, FobsConfig(ack_frequency=1))
        bd = loss_breakdown(net, stats.receiver_socket_drops)
        assert bd.receiver_drops > 0
        assert bd.dominant_cause() == "receiver_socket_overflow"

    def test_queue_overflow_attributed(self):
        """A tiny bottleneck queue under a 2x feeder drops in-network.

        The feeder is only twice the bottleneck so the greedy sender's
        duplicate volume — and hence the event count — stays bounded.
        """
        from repro.simnet.topology import HopSpec, PathSpec, build_path
        spec = PathSpec(
            "q", "a", "b",
            hops=(HopSpec(2e7, 1e-3, queue_bytes=1 << 20),
                  HopSpec(1e7, 1e-3, queue_bytes=4096)),
            bottleneck_bps=1e7,
        )
        net = build_path(spec)
        stats = run_fobs_transfer(net, 100_000, quick_config(), time_limit=60.0)
        bd = loss_breakdown(net, stats.receiver_socket_drops)
        assert bd.queue_drops > 0
        assert bd.dominant_cause() == "queue_overflow"
        assert stats.completed

    def test_render(self):
        bd = LossBreakdown(receiver_drops=1, queue_drops=2, random_losses=3)
        out = bd.render()
        assert "6 total" in out
        assert "random_loss" in out


class _FakeOutcome:
    def __init__(self, completed, packets_sent=10, resumed=0, reason=None):
        self.completed = completed
        self.packets_sent = packets_sent
        self.resumed_packets = resumed
        self.failure_reason = reason
        self.retransmissions = 0


def _supervise(attempt_fn, max_attempts, npackets=100):
    sup = TransferSupervisor(RetryPolicy(max_attempts=max_attempts,
                                         backoff_base=0), sleep=None)
    return sup.run(attempt_fn, npackets=npackets)


class TestRecoveryReportEdgeCases:
    """Satellite: recovery_report on the journal machinery's corners."""

    def test_zero_byte_journal_starts_fresh(self, tmp_path):
        """An empty journal file can't seed a resume: open() falls back
        to a fresh journal, and a run salvaging nothing pays the full
        restart cost."""
        p = tmp_path / "empty.journal"
        p.write_bytes(b"")
        journal, replay = ReceiverJournal.open(str(p), 0xFEED, 100_000, 1000)
        assert replay is None
        assert journal.bitmap.count == 0
        journal.record(0)  # still usable for appending
        journal.close()

        # Crash once, then complete with zero salvage: every packet of
        # both attempts crosses the wire.
        result = _supervise(
            lambda a, e: _FakeOutcome(a == 1, packets_sent=100, resumed=0),
            max_attempts=2)
        report = recovery_report(result, packet_size=1000)
        assert report.attempts == 2
        assert report.packets_salvaged == 0
        assert report.bytes_salvaged == 0
        assert report.total_packets_sent == 200
        assert report.resume_overhead == pytest.approx(1.0)

    def test_fully_journaled_transfer_sends_nothing_twice(self, tmp_path):
        """A journal covering the whole object makes the resumed
        receiver instantly complete and the overhead exactly zero."""
        p = tmp_path / "full.journal"
        journal = ReceiverJournal.create(str(p), 0xBEEF, 100_000, 1000)
        journal.record_range(0, 100)
        journal.close()

        reopened, replay = ReceiverJournal.open(str(p), 0xBEEF, 100_000, 1000)
        assert replay is not None
        assert replay.packets_recovered == 100
        receiver = FobsReceiver(quick_config(packet_size=1000), 100_000,
                                resume_bitmap=replay.bitmap.array)
        assert receiver.complete
        assert receiver.stats.resumed_packets == 100
        reopened.close()

        # The resumed attempt inherits all 100 packets and resends none.
        result = _supervise(
            lambda a, e: _FakeOutcome(a == 0, packets_sent=0, resumed=100),
            max_attempts=2)
        assert result.attempts == 1
        report = recovery_report(result, packet_size=1000)
        assert report.packets_salvaged == 100
        assert report.bytes_salvaged == 100_000
        assert report.total_packets_sent == 0
        assert report.resume_overhead == pytest.approx(-1.0)

    def test_resume_across_two_epochs(self):
        """Two crashes → three attempts on epochs 0/1/2, each salvaging
        more; the report accounts every attempt's sends."""
        sends = {0: 100, 1: 60, 2: 30}
        salvage = {0: 0, 1: 40, 2: 70}

        def attempt(a, e):
            assert e == a  # epochs advance 0, 1, 2 with the attempts
            return _FakeOutcome(a == 2, packets_sent=sends[a],
                                resumed=salvage[a],
                                reason=None if a == 2 else "crash")

        result = _supervise(attempt, max_attempts=3)
        report = recovery_report(result, packet_size=1000)
        assert report.attempts == 3
        assert [r.epoch for r in result.attempt_records] == [0, 1, 2]
        # Salvage reported is the *final* attempt's inheritance.
        assert report.packets_salvaged == 70
        assert report.total_packets_sent == 190
        assert report.resume_overhead == pytest.approx(0.9)
        assert result.completed


class TestTraceSummary:
    """Satellite: Tracer truncation surfaced in diagnostics."""

    def test_uncapped_trace(self):
        tracer = Tracer(enabled=True)
        for i in range(5):
            tracer.emit(float(i), "send", f"pkt {i}")
        tracer.emit(5.0, "drop", "pkt 5")
        summary = trace_summary(tracer)
        assert summary.records == 6
        assert not summary.truncated
        assert summary.by_kind == {"drop": 1, "send": 5}
        assert "TRUNCATED" not in summary.render()

    def test_capped_trace_reports_truncation(self):
        tracer = Tracer(enabled=True, max_records=3)
        for i in range(10):
            tracer.emit(float(i), "send", f"pkt {i}")
        summary = trace_summary(tracer)
        assert summary.records == 3
        assert summary.truncated
        assert summary.max_records == 3
        out = summary.render()
        assert "TRUNCATED at max_records=3" in out
        assert "lower bounds" in out
        # The tracer's own render carries the same warning.
        assert "truncated at max_records=3" in tracer.render()
