"""Tests for the loss-cause diagnostics."""

import repro.simnet as sn
from repro.analysis.diagnostics import LossBreakdown, loss_breakdown
from repro.core import FobsConfig, run_fobs_transfer

from _support import quick_config, tiny_path


class TestLossBreakdown:
    def test_clean_run_has_no_losses(self):
        net = tiny_path()
        stats = run_fobs_transfer(net, 300_000, quick_config())
        bd = loss_breakdown(net, stats.receiver_socket_drops)
        assert bd.total == 0
        assert bd.dominant_cause() == "none"

    def test_random_loss_attributed(self):
        net = tiny_path(loss_rate=0.05, seed=1)
        stats = run_fobs_transfer(net, 300_000, quick_config())
        bd = loss_breakdown(net, stats.receiver_socket_drops)
        assert bd.random_losses > 0
        assert bd.dominant_cause() == "random_loss"

    def test_receiver_overflow_attributed(self):
        """F=1 on the PC profile overruns the receiver: drops happen at
        the UDP socket, not in the network."""
        net = sn.short_haul()
        stats = run_fobs_transfer(net, 1_000_000, FobsConfig(ack_frequency=1))
        bd = loss_breakdown(net, stats.receiver_socket_drops)
        assert bd.receiver_drops > 0
        assert bd.dominant_cause() == "receiver_socket_overflow"

    def test_queue_overflow_attributed(self):
        """A tiny bottleneck queue under a 2x feeder drops in-network.

        The feeder is only twice the bottleneck so the greedy sender's
        duplicate volume — and hence the event count — stays bounded.
        """
        from repro.simnet.topology import HopSpec, PathSpec, build_path
        spec = PathSpec(
            "q", "a", "b",
            hops=(HopSpec(2e7, 1e-3, queue_bytes=1 << 20),
                  HopSpec(1e7, 1e-3, queue_bytes=4096)),
            bottleneck_bps=1e7,
        )
        net = build_path(spec)
        stats = run_fobs_transfer(net, 100_000, quick_config(), time_limit=60.0)
        bd = loss_breakdown(net, stats.receiver_socket_drops)
        assert bd.queue_drops > 0
        assert bd.dominant_cause() == "queue_overflow"
        assert stats.completed

    def test_render(self):
        bd = LossBreakdown(receiver_drops=1, queue_drops=2, random_losses=3)
        out = bd.render()
        assert "6 total" in out
        assert "random_loss" in out
