"""Tests for the sans-IO FOBS receiver state machine."""

import pytest

from repro.core.config import FobsConfig
from repro.core.receiver import FobsReceiver


class TestAckTriggering:
    def test_ack_after_frequency_new_packets(self):
        r = FobsReceiver(FobsConfig(ack_frequency=3), 10 * 1024)
        assert r.on_data(0, now=0.1) is None
        assert r.on_data(1, now=0.2) is None
        ack = r.on_data(2, now=0.3)
        assert ack is not None
        assert ack.received_count == 3

    def test_duplicates_do_not_count_toward_frequency(self):
        r = FobsReceiver(FobsConfig(ack_frequency=2), 10 * 1024)
        r.on_data(0, now=0.1)
        assert r.on_data(0, now=0.2) is None  # dup
        assert r.stats.packets_duplicate == 1
        ack = r.on_data(1, now=0.3)
        assert ack is not None

    def test_counter_resets_after_ack(self):
        r = FobsReceiver(FobsConfig(ack_frequency=2), 10 * 1024)
        r.on_data(0, 0.1)
        assert r.on_data(1, 0.2) is not None
        assert r.on_data(2, 0.3) is None  # counter restarted

    def test_ack_ids_increment(self):
        r = FobsReceiver(FobsConfig(ack_frequency=1), 10 * 1024)
        a0 = r.on_data(0, 0.1)
        a1 = r.on_data(1, 0.2)
        assert (a0.ack_id, a1.ack_id) == (0, 1)

    def test_ack_bitmap_snapshot_reflects_state(self):
        r = FobsReceiver(FobsConfig(ack_frequency=2), 4 * 1024)
        r.on_data(3, 0.1)
        ack = r.on_data(1, 0.2)
        assert list(ack.bitmap) == [False, True, False, True]


class TestCompletion:
    def test_final_packet_always_triggers_ack(self):
        r = FobsReceiver(FobsConfig(ack_frequency=1000), 3 * 1024)
        r.on_data(0, 0.1)
        r.on_data(1, 0.2)
        ack = r.on_data(2, 0.3)
        assert ack is not None
        assert r.complete
        assert r.stats.completed_at == 0.3

    def test_completion_signal_requires_completion(self):
        r = FobsReceiver(FobsConfig(), 2 * 1024)
        with pytest.raises(RuntimeError):
            r.completion_signal()
        r.on_data(0, 0.1)
        r.on_data(1, 0.2)
        assert r.completion_signal().total_packets == 2

    def test_completed_at_not_overwritten(self):
        r = FobsReceiver(FobsConfig(ack_frequency=1), 1024)
        r.on_data(0, 0.5)
        r.on_data(0, 0.9)
        assert r.stats.completed_at == 0.5


class TestStats:
    def test_new_and_duplicate_counts(self):
        r = FobsReceiver(FobsConfig(ack_frequency=100), 10 * 1024)
        for seq in (0, 1, 1, 2, 0):
            r.on_data(seq, 0.1)
        assert r.stats.packets_new == 3
        assert r.stats.packets_duplicate == 2

    def test_acks_built_counted(self):
        r = FobsReceiver(FobsConfig(ack_frequency=1), 3 * 1024)
        for seq in range(3):
            r.on_data(seq, 0.1)
        assert r.stats.acks_built == 3
