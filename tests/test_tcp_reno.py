"""Unit tests for the Reno congestion controller."""

import pytest

from repro.tcp.reno import RenoController

MSS = 1000


class TestSlowStart:
    def test_initial_window(self):
        c = RenoController(MSS, init_cwnd_segments=2)
        assert c.cwnd == 2 * MSS
        assert c.in_slow_start

    def test_exponential_growth_per_ack(self):
        c = RenoController(MSS)
        c.on_new_ack(MSS)
        assert c.cwnd == 3 * MSS

    def test_abc_caps_growth_at_two_mss(self):
        c = RenoController(MSS)
        c.on_new_ack(10 * MSS)
        assert c.cwnd == 4 * MSS  # 2*MSS cap, not 10

    def test_transitions_to_congestion_avoidance(self):
        c = RenoController(MSS, ssthresh=4 * MSS)
        c.on_new_ack(MSS)
        c.on_new_ack(MSS)
        assert not c.in_slow_start
        # CA growth is sublinear per ack now
        before = c.cwnd
        c.on_new_ack(MSS)
        assert 0 < c.cwnd - before < MSS


class TestCongestionAvoidance:
    def test_one_mss_per_rtt(self):
        c = RenoController(MSS, ssthresh=1)  # force CA immediately
        c.cwnd = 10 * MSS
        # one full window of acks ~ one RTT
        for _ in range(10):
            c.on_new_ack(MSS)
        assert c.cwnd == pytest.approx(11 * MSS, rel=0.01)

    def test_ignores_zero_ack(self):
        c = RenoController(MSS)
        before = c.cwnd
        c.on_new_ack(0)
        assert c.cwnd == before


class TestFastRecovery:
    def test_enter_halves_window(self):
        c = RenoController(MSS)
        c.cwnd = 20 * MSS
        c.enter_fast_recovery(flight_size=20 * MSS, recover_point=12345)
        assert c.ssthresh == 10 * MSS
        assert c.cwnd == 13 * MSS  # ssthresh + 3 MSS
        assert c.in_fast_recovery
        assert c.recover_point == 12345

    def test_ssthresh_floor_two_mss(self):
        c = RenoController(MSS)
        c.enter_fast_recovery(flight_size=MSS, recover_point=0)
        assert c.ssthresh == 2 * MSS

    def test_dup_ack_inflation(self):
        c = RenoController(MSS)
        c.enter_fast_recovery(10 * MSS, 0)
        before = c.cwnd
        c.on_dup_ack_in_recovery()
        assert c.cwnd == before + MSS

    def test_exit_deflates_to_ssthresh(self):
        c = RenoController(MSS)
        c.enter_fast_recovery(10 * MSS, 0)
        c.on_dup_ack_in_recovery()
        c.exit_fast_recovery()
        assert c.cwnd == c.ssthresh
        assert not c.in_fast_recovery

    def test_partial_ack_deflates_and_reinflates(self):
        c = RenoController(MSS)
        c.enter_fast_recovery(10 * MSS, 0)
        cwnd_before = c.cwnd
        c.on_partial_ack(2 * MSS)
        assert c.cwnd == max(c.ssthresh, cwnd_before - 2 * MSS + MSS)

    def test_fast_recovery_counter(self):
        c = RenoController(MSS)
        c.enter_fast_recovery(10 * MSS, 0)
        assert c.fast_recoveries == 1


class TestTimeout:
    def test_collapses_to_one_segment(self):
        c = RenoController(MSS)
        c.cwnd = 50 * MSS
        c.on_timeout(flight_size=50 * MSS)
        assert c.cwnd == MSS
        assert c.ssthresh == 25 * MSS
        assert c.timeouts == 1

    def test_timeout_exits_fast_recovery(self):
        c = RenoController(MSS)
        c.enter_fast_recovery(10 * MSS, 0)
        c.on_timeout(10 * MSS)
        assert not c.in_fast_recovery


class TestUsableWindow:
    def test_limited_by_cwnd(self):
        c = RenoController(MSS)
        c.cwnd = 5 * MSS
        assert c.usable_window(flight_size=3 * MSS, peer_rwnd=1 << 30) == 2 * MSS

    def test_limited_by_rwnd(self):
        c = RenoController(MSS)
        c.cwnd = 100 * MSS
        assert c.usable_window(flight_size=0, peer_rwnd=4 * MSS) == 4 * MSS

    def test_never_negative(self):
        c = RenoController(MSS)
        c.cwnd = 2 * MSS
        assert c.usable_window(flight_size=10 * MSS, peer_rwnd=1 << 30) == 0

    def test_invalid_mss_rejected(self):
        with pytest.raises(ValueError):
            RenoController(0)
