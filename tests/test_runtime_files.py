"""Tests for the real-socket file-transfer session protocol and CLI."""

import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.core.config import FobsConfig
from repro.runtime.files import receive_file, send_file

pytestmark = pytest.mark.loopback


def make_file(tmp_path, nbytes, seed=0):
    data = np.random.default_rng(seed).integers(0, 256, nbytes,
                                                dtype=np.uint8).tobytes()
    path = tmp_path / "payload.bin"
    path.write_bytes(data)
    return path, data


def run_pair(tmp_path, nbytes, port, config=None, seed=0):
    src, data = make_file(tmp_path, nbytes, seed)
    out = tmp_path / "out.bin"
    ready = threading.Event()
    result = {}

    def recv():
        result["recv"] = receive_file(str(out), port, bind="127.0.0.1",
                                      ready=ready, timeout=60.0)

    thread = threading.Thread(target=recv, daemon=True)
    thread.start()
    assert ready.wait(10)
    result["send"] = send_file(str(src), "127.0.0.1", port,
                               config=config, timeout=60.0)
    thread.join(15)
    assert not thread.is_alive()
    return data, out, result


class TestFileTransfer:
    def test_roundtrip_byte_exact(self, tmp_path):
        data, out, result = run_pair(tmp_path, 300_000, port=39211)
        assert out.read_bytes() == data
        assert result["recv"].crc_ok
        assert result["send"].nbytes == 300_000

    def test_small_file(self, tmp_path):
        data, out, result = run_pair(tmp_path, 100, port=39212)
        assert out.read_bytes() == data

    def test_odd_size_with_custom_packet(self, tmp_path):
        config = FobsConfig(packet_size=4096, ack_frequency=8)
        data, out, result = run_pair(tmp_path, 123_457, port=39213,
                                     config=config)
        assert out.read_bytes() == data

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.write_bytes(b"")
        with pytest.raises(ValueError):
            send_file(str(empty), "127.0.0.1", 39214)

    def test_throughput_reported(self, tmp_path):
        _, _, result = run_pair(tmp_path, 200_000, port=39215)
        assert result["send"].throughput_bps > 0
        assert result["recv"].duration > 0


class TestResumableFileTransfer:
    def run_resumable(self, tmp_path, port, kill_plan=None, nbytes=300_000):
        from repro.runtime.supervisor import RetryPolicy

        src, data = make_file(tmp_path, nbytes, seed=7)
        out = tmp_path / "out.bin"
        config = FobsConfig(ack_frequency=32, stall_timeout=0.1,
                            stall_abort_after=0.5, receiver_idle_timeout=1.5)
        ready = threading.Event()
        result = {}

        def recv():
            result["recv"] = receive_file(str(out), port, bind="127.0.0.1",
                                          ready=ready, timeout=60.0,
                                          max_attempts=3, config=config)

        thread = threading.Thread(target=recv, daemon=True)
        thread.start()
        assert ready.wait(10)
        result["send"] = send_file(
            str(src), "127.0.0.1", port, config=config, timeout=60.0,
            max_attempts=3, kill_plan=kill_plan,
            policy=RetryPolicy(max_attempts=3, backoff_base=0.05,
                               jitter=0.0))
        thread.join(30)
        assert not thread.is_alive()
        return data, out, result

    def test_clean_resumable_session(self, tmp_path):
        data, out, result = self.run_resumable(tmp_path, port=39217)
        assert out.read_bytes() == data
        assert result["send"].completed and result["send"].attempts == 1
        assert result["recv"].crc_ok and result["recv"].attempts == 1
        assert not (tmp_path / "out.bin.journal").exists()
        assert not (tmp_path / "out.bin.part").exists()

    def test_sender_crash_resumes_via_real_resume_handshake(self, tmp_path):
        """Kill the sender mid-blast; retry resumes from the journal."""
        from repro.simnet.faults import KillSwitch

        kill_plan = {0: KillSwitch(target="sender", after_packets=100)}
        data, out, result = self.run_resumable(tmp_path, port=39218,
                                               kill_plan=kill_plan)
        send, recv = result["send"], result["recv"]
        assert out.read_bytes() == data
        assert send.completed and send.attempts == 2
        assert recv.crc_ok and recv.attempts == 2
        # The RESUME bitmap crossed the TCP control channel: both ends
        # agree on how much the journal salvaged.
        assert send.resumed_packets > 0
        assert send.resumed_packets == recv.resumed_packets
        # Cleaned up after success.
        assert not (tmp_path / "out.bin.journal").exists()
        assert not (tmp_path / "out.bin.part").exists()

    def test_exhausted_attempts_reports_failure(self, tmp_path):
        """Every attempt killed: both sides return completed=False."""
        from repro.simnet.faults import KillSwitch

        kill_plan = {a: KillSwitch(target="sender", after_packets=50)
                     for a in range(3)}
        src, data = make_file(tmp_path, 200_000, seed=8)
        out = tmp_path / "dead.bin"
        config = FobsConfig(ack_frequency=32, stall_timeout=0.1,
                            stall_abort_after=0.5, receiver_idle_timeout=1.0)
        ready = threading.Event()
        result = {}

        def recv():
            result["recv"] = receive_file(str(out), 39219, bind="127.0.0.1",
                                          ready=ready, timeout=15.0,
                                          max_attempts=3, config=config)

        thread = threading.Thread(target=recv, daemon=True)
        thread.start()
        assert ready.wait(10)
        from repro.runtime.supervisor import RetryPolicy

        send = send_file(str(src), "127.0.0.1", 39219, config=config,
                         timeout=15.0, max_attempts=3, kill_plan=kill_plan,
                         policy=RetryPolicy(max_attempts=3, backoff_base=0.05,
                                            jitter=0.0))
        thread.join(30)
        assert not send.completed
        assert send.attempts == 3
        assert "killed by crash injection" in send.failure_reason
        assert not out.exists()
        # The journal survives a failed session for a later resume.
        assert (tmp_path / "dead.bin.journal").exists()


class TestCliProcesses:
    def test_two_process_transfer(self, tmp_path):
        """End-to-end: receiver and sender as separate OS processes."""
        import time

        src, data = make_file(tmp_path, 200_000, seed=3)
        out = tmp_path / "cli_out.bin"
        port = 39216
        recv_proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.cli", "recv",
             "--port", str(port), "--output", str(out), "--bind", "127.0.0.1",
             "--timeout", "60"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            # The sender retries while the receiver's listener comes up.
            deadline = time.monotonic() + 20
            send = None
            while time.monotonic() < deadline:
                send = subprocess.run(
                    [sys.executable, "-m", "repro.runtime.cli", "send",
                     str(src), "--host", "127.0.0.1", "--port", str(port),
                     "--timeout", "60"],
                    capture_output=True, text=True, timeout=90,
                )
                if send.returncode == 0 or "Connection refused" not in send.stderr:
                    break
                time.sleep(0.2)
            assert send is not None and send.returncode == 0, send.stderr
            assert "send ok" in send.stdout
            assert "throughput_mbps=" in send.stdout
            stdout, stderr = recv_proc.communicate(timeout=30)
            assert recv_proc.returncode == 0, stderr
            assert "crc=ok" in stdout
            assert out.read_bytes() == data
        finally:
            if recv_proc.poll() is None:
                recv_proc.kill()
