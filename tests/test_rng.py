"""Tests for named reproducible RNG streams."""

import numpy as np
import pytest

from repro.simnet.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("loss").random(10)
        b = RngStreams(7).stream("loss").random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("loss").random(10)
        b = RngStreams(2).stream("loss").random(10)
        assert not np.array_equal(a, b)

    def test_different_names_are_independent(self):
        streams = RngStreams(0)
        a = streams.stream("alpha").random(10)
        b = streams.stream("beta").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RngStreams(0)
        s1.stream("a").random(5)
        tail1 = s1.stream("a").random(5)

        s2 = RngStreams(0)
        s2.stream("a").random(5)
        s2.stream("b")  # extra stream created in between
        tail2 = s2.stream("a").random(5)
        assert np.array_equal(tail1, tail2)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("42")  # type: ignore[arg-type]
