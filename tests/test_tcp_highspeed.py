"""Tests for HighSpeed TCP (RFC 3649)."""

import pytest

from repro.tcp.highspeed import (
    HIGH_WINDOW,
    LOW_WINDOW,
    HighSpeedController,
    hs_alpha,
    hs_beta,
    make_controller,
)
from repro.tcp.reno import RenoController

MSS = 1460


class TestResponseFunction:
    def test_reno_regime_below_low_window(self):
        assert hs_alpha(10) == 1.0
        assert hs_beta(10) == 0.5
        assert hs_alpha(LOW_WINDOW) == 1.0

    def test_alpha_grows_with_window(self):
        assert hs_alpha(100) > 1.0
        assert hs_alpha(1000) > hs_alpha(100)
        assert hs_alpha(10000) > hs_alpha(1000)

    def test_beta_shrinks_with_window(self):
        assert hs_beta(100) < 0.5
        assert hs_beta(1000) < hs_beta(100)

    def test_rfc_calibration_point(self):
        """At W_H = 83000 the RFC specifies a ~ 72, b = 0.1."""
        assert hs_beta(HIGH_WINDOW) == pytest.approx(0.1, abs=1e-9)
        assert hs_alpha(HIGH_WINDOW) == pytest.approx(72, rel=0.05)

    def test_clamped_above_high_window(self):
        assert hs_alpha(HIGH_WINDOW * 10) == hs_alpha(HIGH_WINDOW)


class TestController:
    def test_slow_start_same_as_reno(self):
        hs = HighSpeedController(MSS)
        reno = RenoController(MSS)
        hs.on_new_ack(MSS)
        reno.on_new_ack(MSS)
        assert hs.cwnd == reno.cwnd

    def test_ca_growth_exceeds_reno_at_large_window(self):
        hs = HighSpeedController(MSS, ssthresh=1)
        reno = RenoController(MSS, ssthresh=1)
        hs.cwnd = reno.cwnd = 1000 * MSS
        hs.on_new_ack(MSS)
        reno.on_new_ack(MSS)
        # a(1000) ~ 7.8 per the RFC response function
        assert hs.cwnd - 1000 * MSS > 5 * (reno.cwnd - 1000 * MSS)

    def test_gentler_decrease_at_large_window(self):
        hs = HighSpeedController(MSS)
        hs.cwnd = 1000 * MSS
        hs.enter_fast_recovery(flight_size=1000 * MSS, recover_point=0)
        # b(1000) ~ 0.36: ssthresh ~ 64% of flight, vs Reno's 50%.
        assert hs.ssthresh > 0.55 * 1000 * MSS

    def test_small_window_recovery_is_reno(self):
        hs = HighSpeedController(MSS)
        hs.cwnd = 10 * MSS
        hs.enter_fast_recovery(flight_size=10 * MSS, recover_point=0)
        assert hs.ssthresh == pytest.approx(5 * MSS)

    def test_timeout_keeps_reno_severity(self):
        hs = HighSpeedController(MSS)
        hs.cwnd = 1000 * MSS
        hs.on_timeout(1000 * MSS)
        assert hs.cwnd == MSS


class TestFactory:
    def test_names(self):
        assert isinstance(make_controller("reno", MSS), RenoController)
        assert isinstance(make_controller("highspeed", MSS), HighSpeedController)
        assert not isinstance(make_controller("reno", MSS), HighSpeedController)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_controller("cubic", MSS)

    def test_options_validation(self):
        from repro.tcp.options import TcpOptions
        with pytest.raises(ValueError):
            TcpOptions(congestion_control="cubic")


class TestEndToEnd:
    def test_highspeed_recovers_fat_pipe_faster(self):
        """After a loss on a high-BDP path, HighSpeed TCP regains the
        window much faster than Reno — the reason Section 7 would
        switch to it rather than to standard TCP."""
        from _support import tiny_path
        from repro.tcp import TcpOptions, run_bulk_transfer

        results = {}
        for cc in ("reno", "highspeed"):
            net = tiny_path(delay=20e-3, loss_rate=3e-4, seed=3,
                            bandwidth_bps=622e6, queue_bytes=1 << 21)
            opts = TcpOptions(congestion_control=cc, sack=True,
                              recv_buffer=1 << 23, send_buffer=1 << 23)
            res = run_bulk_transfer(net, 40_000_000, sender_options=opts,
                                    receiver_options=opts, time_limit=300.0)
            assert res.completed
            results[cc] = res.throughput_bps
        assert results["highspeed"] > 1.2 * results["reno"]
