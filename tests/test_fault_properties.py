"""Property-based tests for fault injection and the hardened wire formats.

Two families:

* **Transfer properties** — for *any* seeded fault schedule, a FOBS
  transfer terminates with a diagnosable outcome; whenever it reports
  success the receiver holds every packet and accepted no corrupted
  one; and replaying the same (schedule, seed) pair produces an
  identical packet trace.
* **Wire properties** — the checksummed real-socket formats round-trip
  losslessly, and no single-byte corruption can change the decoded
  payload or acknowledgement bitmap undetected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FobsConfig
from repro.core.packets import AckPacket, DataPacket
from repro.core.session import FobsTransfer
from repro.runtime import wire
from repro.simnet import FaultSchedule, Tracer, install_faults

from _support import tiny_path

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

NBYTES = 64_000


def schedules() -> st.SearchStrategy[FaultSchedule]:
    """Random-but-valid fault schedules, biased toward survivable ones."""
    windows = st.one_of(
        st.just(()),
        st.tuples(st.floats(0.0, 0.05), st.floats(0.06, 0.5)).map(
            lambda w: (w,)),
    )
    return st.builds(
        FaultSchedule,
        blackholes=windows,
        loss_rate=st.floats(0.0, 0.15),
        duplicate_rate=st.floats(0.0, 0.10),
        corrupt_rate=st.floats(0.0, 0.05),
    )


def run_with_faults(schedule: FaultSchedule, seed: int, traced: bool = False):
    net = tiny_path(seed=seed)
    install_faults(net, schedule, direction="both")
    tracer = Tracer(enabled=traced)
    config = FobsConfig(ack_frequency=16, stall_timeout=0.5,
                        stall_abort_after=8.0, receiver_idle_timeout=10.0,
                        ack_refresh_interval=0.4)
    transfer = FobsTransfer(net, NBYTES, config, tracer=tracer)
    stats = transfer.run(time_limit=60.0)
    trace = [(r.time, r.kind, r.detail) for r in tracer.records]
    return transfer, stats, trace


class TestTransferProperties:
    @settings(max_examples=12, deadline=None)
    @given(schedule=schedules(), seed=st.integers(0, 2**16))
    def test_success_implies_integrity(self, schedule, seed):
        """Terminates; on success, every packet landed and nothing
        corrupted was ever accepted into the object."""
        transfer, stats, _ = run_with_faults(schedule, seed)
        # Exactly one diagnosable outcome.
        assert stats.ok or stats.failed or stats.timed_out
        if stats.ok:
            assert transfer.receiver.bitmap.is_complete
            assert transfer.receiver.stats.packets_new == transfer.receiver.npackets
            # Corrupted frames were counted and dropped, never marked.
            delivered_corrupt = transfer.receiver.stats.packets_corrupt
            assert stats.corrupt_data_dropped == delivered_corrupt
        if stats.failed:
            assert stats.failure_reason

    @settings(max_examples=8, deadline=None)
    @given(schedule=schedules(), seed=st.integers(0, 2**16))
    def test_replay_is_byte_identical(self, schedule, seed):
        """The same (schedule, seed) pair replays the same trace."""
        _, stats_a, trace_a = run_with_faults(schedule, seed, traced=True)
        _, stats_b, trace_b = run_with_faults(schedule, seed, traced=True)
        assert trace_a == trace_b
        assert stats_a.packets_sent == stats_b.packets_sent
        assert stats_a.ok == stats_b.ok
        # Schedules round-trip through their dict form, replaying too.
        clone = FaultSchedule.from_dict(schedule.to_dict())
        _, stats_c, trace_c = run_with_faults(clone, seed, traced=True)
        assert trace_c == trace_a


class TestWireProperties:
    @settings(max_examples=50, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=1400),
           seq=st.integers(0, 2**31 - 1),
           transmission=st.integers(0, 2**15))
    def test_data_round_trip(self, payload, seq, transmission):
        pkt = DataPacket(seq=seq, total=seq + 1, payload_bytes=len(payload),
                         transmission=transmission)
        datagram = wire.encode_data(pkt, payload, checksum=True)
        decoded, out = wire.decode_data(datagram, checksum=True)
        assert out == payload
        assert (decoded.seq, decoded.transmission) == (seq, transmission)

    @settings(max_examples=50, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=1400),
           flip=st.integers(0, 2**31), data=st.data())
    def test_data_corruption_always_detected(self, payload, flip, data):
        """Any single-byte flip anywhere in a checksummed data datagram
        raises ChecksumError — silent payload corruption is impossible."""
        pkt = DataPacket(seq=3, total=10, payload_bytes=len(payload))
        datagram = bytearray(wire.encode_data(pkt, payload, checksum=True))
        pos = flip % len(datagram)
        delta = data.draw(st.integers(1, 255))
        datagram[pos] ^= delta
        with pytest.raises(wire.ChecksumError):
            wire.decode_data(bytes(datagram), checksum=True)

    @settings(max_examples=50, deadline=None)
    @given(bits=st.lists(st.booleans(), min_size=1, max_size=400),
           ack_id=st.integers(0, 2**31 - 1))
    def test_ack_round_trip(self, bits, ack_id):
        bitmap = np.asarray(bits, dtype=np.bool_)
        ack = AckPacket(ack_id=ack_id, received_count=int(bitmap.sum()),
                        bitmap=bitmap)
        decoded = wire.decode_ack(wire.encode_ack(ack, checksum=True),
                                  checksum=True)
        assert decoded.ack_id == ack_id
        assert np.array_equal(decoded.bitmap, bitmap)

    @settings(max_examples=50, deadline=None)
    @given(bits=st.lists(st.booleans(), min_size=8, max_size=400),
           flip=st.integers(0, 2**31), data=st.data())
    def test_ack_bitmap_never_silently_corrupted(self, bits, flip, data):
        """A flipped byte either raises or leaves the decoded bitmap
        intact (the CRC covers the bitmap, the payload that matters)."""
        bitmap = np.asarray(bits, dtype=np.bool_)
        ack = AckPacket(ack_id=7, received_count=int(bitmap.sum()),
                        bitmap=bitmap)
        datagram = bytearray(wire.encode_ack(ack, checksum=True))
        pos = flip % len(datagram)
        delta = data.draw(st.integers(1, 255))
        datagram[pos] ^= delta
        try:
            decoded = wire.decode_ack(bytes(datagram), checksum=True)
        except ValueError:
            return  # detected (ChecksumError is a ValueError)
        # A flip in the uncovered header words may survive, but it can
        # never fabricate a "received" bit: a false positive would make
        # the sender skip a packet forever, a false negative merely
        # re-sends one.
        n = min(decoded.bitmap.shape[0], bitmap.shape[0])
        assert np.array_equal(decoded.bitmap[:n], bitmap[:n])
        assert not decoded.bitmap[n:].any()

    def test_fallback_format_is_byte_identical(self):
        """checksum=False reproduces the original wire format exactly."""
        pkt = DataPacket(seq=1, total=4, payload_bytes=3)
        plain = wire.encode_data(pkt, b"abc", checksum=False)
        summed = wire.encode_data(pkt, b"abc", checksum=True)
        assert summed[:-wire.CHECKSUM_TRAILER_BYTES] == plain
        bitmap = np.asarray([True, False, True, False])
        ack = AckPacket(ack_id=0, received_count=2, bitmap=bitmap)
        plain_ack = wire.encode_ack(ack, checksum=False)
        summed_ack = wire.encode_ack(ack, checksum=True)
        # Only the formerly reserved fourth header word differs.
        assert plain_ack[:12] == summed_ack[:12]
        assert plain_ack[16:] == summed_ack[16:]
        assert plain_ack[12:16] == b"\x00\x00\x00\x00"
