"""Tests for mesh topologies built from networkx graphs."""

import networkx as nx

from repro.core import run_fobs_transfer
from repro.simnet.graph import MeshNetwork, PairView, abilene_like
from repro.simnet.packet import Address
from repro.simnet.sockets import UdpSocket
from repro.tcp import run_bulk_transfer

from _support import quick_config


def small_mesh(seed=0):
    g = nx.Graph()
    g.add_node("x", host=True)
    g.add_node("y", host=True)
    g.add_node("r")
    g.add_edge("x", "r", bandwidth_bps=1e8, delay=1e-3, queue_bytes=1 << 16)
    g.add_edge("r", "y", bandwidth_bps=1e8, delay=1e-3, queue_bytes=1 << 16)
    return MeshNetwork(g, seed=seed)


class TestMeshConstruction:
    def test_hosts_and_routers_partitioned(self):
        mesh = small_mesh()
        assert set(mesh.hosts) == {"x", "y"}
        assert set(mesh.routers) == {"r"}

    def test_links_bidirectional(self):
        mesh = small_mesh()
        assert ("x", "r") in mesh.links
        assert ("r", "x") in mesh.links

    def test_basic_delivery(self):
        mesh = small_mesh()
        tx = UdpSocket(mesh.host("x"), 100)
        rx = UdpSocket(mesh.host("y"), 200)
        tx.sendto("hi", 64, Address("y", 200))
        mesh.sim.run()
        assert rx.poll().payload == "hi"


class TestShortestPathRouting:
    def test_traffic_takes_lowest_delay_path(self):
        g = nx.Graph()
        g.add_node("s", host=True)
        g.add_node("t", host=True)
        for r in ("fast", "slow"):
            g.add_node(r)
        g.add_edge("s", "fast", bandwidth_bps=1e8, delay=1e-3)
        g.add_edge("fast", "t", bandwidth_bps=1e8, delay=1e-3)
        g.add_edge("s", "slow", bandwidth_bps=1e8, delay=50e-3)
        g.add_edge("slow", "t", bandwidth_bps=1e8, delay=50e-3)
        mesh = MeshNetwork(g)
        tx = UdpSocket(mesh.host("s"), 100)
        rx = UdpSocket(mesh.host("t"), 200)
        tx.sendto(None, 64, Address("t", 200))
        mesh.sim.run()
        assert rx.datagrams_received == 1
        assert mesh.link("s", "fast").stats.frames_sent == 1
        assert mesh.link("s", "slow").stats.frames_sent == 0


class TestPairView:
    def test_fobs_transfer_over_mesh(self):
        mesh = small_mesh()
        net = PairView(mesh, "x", "y")
        stats = run_fobs_transfer(net, 300_000, quick_config())
        assert stats.completed
        assert stats.percent_of_bottleneck > 50

    def test_tcp_transfer_over_mesh(self):
        mesh = small_mesh()
        net = PairView(mesh, "x", "y")
        res = run_bulk_transfer(net, 300_000)
        assert res.completed

    def test_bottleneck_override(self):
        mesh = small_mesh()
        net = PairView(mesh, "x", "y", bottleneck_bps=2e8)
        stats = run_fobs_transfer(net, 300_000, quick_config())
        assert stats.percent_of_bottleneck < 55  # normalized to 200 Mb/s


class TestAbileneLike:
    def test_all_sites_present(self):
        mesh = abilene_like()
        assert set(mesh.hosts) == {"anl", "ncsa", "lcse", "cacr"}

    def test_concurrent_transfers_share_backbone(self):
        """Two FOBS flows between disjoint site pairs run at once."""
        from repro.core import FobsConfig, FobsTransfer

        mesh = abilene_like()
        t1 = FobsTransfer(PairView(mesh, "anl", "lcse"), 500_000,
                          FobsConfig(ack_frequency=16))
        cfg2 = FobsConfig(ack_frequency=16, data_port=7011, ack_port=7012,
                          ctrl_port=7013)
        t2 = FobsTransfer(PairView(mesh, "ncsa", "cacr"), 500_000, cfg2)
        t1.start()
        t2.start()
        mesh.sim.run(until=30.0,
                     stop_when=lambda: t1.sender.complete and t2.sender.complete)
        assert t1.receiver.complete
        assert t2.receiver.complete

    def test_deterministic(self):
        a = run_fobs_transfer(PairView(abilene_like(seed=1), "anl", "cacr"),
                              200_000, quick_config())
        b = run_fobs_transfer(PairView(abilene_like(seed=1), "anl", "cacr"),
                              200_000, quick_config())
        assert a.duration == b.duration
