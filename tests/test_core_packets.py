"""Tests for FOBS wire-format objects."""

import numpy as np
import pytest

from repro.core.packets import (
    ACK_HEADER_BYTES,
    AckPacket,
    CompletionSignal,
    DataPacket,
    ack_wire_bytes,
    bitmap_wire_bytes,
)


class TestDataPacket:
    def test_wire_size_adds_header(self):
        pkt = DataPacket(seq=0, total=10, payload_bytes=1024)
        assert pkt.wire_bytes == 1024 + 12

    def test_seq_bounds_checked(self):
        with pytest.raises(ValueError):
            DataPacket(seq=10, total=10, payload_bytes=1)
        with pytest.raises(ValueError):
            DataPacket(seq=-1, total=10, payload_bytes=1)

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            DataPacket(seq=0, total=1, payload_bytes=0)


class TestAckPacket:
    def make(self, n=20):
        bm = np.zeros(n, dtype=np.bool_)
        bm[:5] = True
        return AckPacket(ack_id=1, received_count=5, bitmap=bm)

    def test_wire_size_one_bit_per_packet(self):
        ack = self.make(20)
        assert ack.wire_bytes == ACK_HEADER_BYTES + 3  # ceil(20/8)

    def test_bitmap_frozen_on_construction(self):
        ack = self.make()
        with pytest.raises(ValueError):
            ack.bitmap[0] = False

    def test_non_bool_bitmap_rejected(self):
        with pytest.raises(ValueError):
            AckPacket(ack_id=0, received_count=0,
                      bitmap=np.zeros(4, dtype=np.int32))

    def test_npackets(self):
        assert self.make(20).npackets == 20


class TestWireSizes:
    def test_bitmap_wire_bytes(self):
        assert bitmap_wire_bytes(1) == 1
        assert bitmap_wire_bytes(8) == 1
        assert bitmap_wire_bytes(9) == 2
        # the paper's 40 MB / 1 KB object: 39063 packets -> ~4.8 KB ack
        assert bitmap_wire_bytes(39063) == 4883

    def test_ack_wire_bytes(self):
        assert ack_wire_bytes(8) == ACK_HEADER_BYTES + 1

    def test_completion_signal(self):
        assert CompletionSignal(total_packets=10).wire_bytes == 12
