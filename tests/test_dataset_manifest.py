"""Dataset manifest: scan determinism, codec round-trips, identity."""

from __future__ import annotations

import os

import pytest

from repro.core.manifest import ALGO_CRC32, ALGO_SHA256, _digest_chunk
from repro.dataset.manifest import (
    DatasetManifest,
    DatasetManifestCorrupt,
    FileEntry,
    iter_tree,
    manifest_from_files,
    scan_tree,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

CHUNK = 1024


def make_tree(root, files, dirs=()):
    for d in dirs:
        os.makedirs(os.path.join(root, d), exist_ok=True)
    for path, payload in files.items():
        full = os.path.join(root, path)
        os.makedirs(os.path.dirname(full) or root, exist_ok=True)
        with open(full, "wb") as fh:
            fh.write(payload)


SAMPLE = {
    "a.txt": b"alpha" * 100,
    "sub/b.bin": bytes(range(256)) * 9,
    "sub/deep/c.dat": b"",
    "z.raw": os.urandom(3 * CHUNK + 17),
}


class TestScan:
    def test_scan_is_deterministic_and_sorted(self, tmp_path):
        make_tree(tmp_path, SAMPLE, dirs=("hollow",))
        m1 = scan_tree(str(tmp_path), CHUNK)
        m2 = scan_tree(str(tmp_path), CHUNK)
        assert m1 == m2
        paths = [e.path for e in m1.entries]
        assert paths == sorted(paths)
        assert m1.nfiles == 4
        assert "hollow" in m1.dirs

    def test_digests_match_core_manifest(self, tmp_path):
        make_tree(tmp_path, SAMPLE)
        m = scan_tree(str(tmp_path), CHUNK)
        entry = m.entry_for("z.raw")
        data = SAMPLE["z.raw"]
        assert entry.nchunks(CHUNK) == 4
        for i in range(4):
            chunk = data[i * CHUNK:(i + 1) * CHUNK]
            assert entry.chunk_digest(i, m.algo) == _digest_chunk(
                chunk, m.algo)

    def test_symlinks_are_skipped(self, tmp_path):
        make_tree(tmp_path, {"real.txt": b"x" * 10})
        os.symlink(str(tmp_path / "real.txt"), str(tmp_path / "link.txt"))
        dirs, files = iter_tree(str(tmp_path))
        assert files == ["real.txt"]

    def test_exclude(self, tmp_path):
        make_tree(tmp_path, {"keep.txt": b"k", ".journal": b"j"})
        m = scan_tree(str(tmp_path), CHUNK, exclude=[".journal"])
        assert [e.path for e in m.entries] == ["keep.txt"]


class TestIdentity:
    def test_id_ignores_mtime(self, tmp_path):
        make_tree(tmp_path, SAMPLE)
        m1 = scan_tree(str(tmp_path), CHUNK)
        os.utime(str(tmp_path / "a.txt"), ns=(1, 1))
        m2 = scan_tree(str(tmp_path), CHUNK)
        assert m1 != m2  # mtimes differ...
        assert m1.dataset_id == m2.dataset_id  # ...identity does not

    def test_id_tracks_content(self, tmp_path):
        make_tree(tmp_path, SAMPLE)
        m1 = scan_tree(str(tmp_path), CHUNK)
        with open(tmp_path / "a.txt", "r+b") as fh:
            fh.write(b"B")
        m2 = scan_tree(str(tmp_path), CHUNK)
        assert m1.dataset_id != m2.dataset_id

    def test_id_tracks_renames(self):
        a = manifest_from_files({"x.txt": b"hello"}, CHUNK)
        b = manifest_from_files({"y.txt": b"hello"}, CHUNK)
        assert a.dataset_id != b.dataset_id


class TestCodec:
    def test_binary_round_trip(self, tmp_path):
        make_tree(tmp_path, SAMPLE, dirs=("hollow",))
        m = scan_tree(str(tmp_path), CHUNK)
        assert DatasetManifest.decode(m.encode()) == m

    def test_json_round_trip(self, tmp_path):
        make_tree(tmp_path, SAMPLE, dirs=("hollow",))
        m = scan_tree(str(tmp_path), CHUNK, algo=ALGO_SHA256)
        assert DatasetManifest.from_json(m.to_json()) == m
        # canonical: serializing twice is byte-identical
        assert m.to_json() == DatasetManifest.from_json(m.to_json()).to_json()

    def test_save_load(self, tmp_path):
        m = manifest_from_files({"f.bin": b"q" * 5000}, CHUNK)
        path = str(tmp_path / "ds.manifest")
        m.save(path)
        assert DatasetManifest.load(path) == m

    def test_every_flipped_byte_is_detected(self):
        m = manifest_from_files(
            {"a.bin": b"12345" * 40, "b/c.bin": b"x" * CHUNK * 2}, CHUNK)
        blob = bytearray(m.encode())
        # Sample positions across header, dirs, entries and trailer CRC.
        for pos in range(0, len(blob), max(1, len(blob) // 64)):
            blob[pos] ^= 0xFF
            with pytest.raises(DatasetManifestCorrupt):
                DatasetManifest.decode(bytes(blob))
            blob[pos] ^= 0xFF
        DatasetManifest.decode(bytes(blob))  # restored blob still parses

    def test_truncation_is_detected(self):
        m = manifest_from_files({"a.bin": b"z" * 100}, CHUNK)
        blob = m.encode()
        for cut in (0, 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(DatasetManifestCorrupt):
                DatasetManifest.decode(blob[:cut])

    @settings(max_examples=30, deadline=None)
    @given(files=st.dictionaries(
        st.lists(st.text(alphabet="abcdef", min_size=1, max_size=4),
                 min_size=1, max_size=3).map("/".join),
        st.binary(min_size=0, max_size=4 * CHUNK),
        min_size=0, max_size=8),
        algo=st.sampled_from([ALGO_CRC32, ALGO_SHA256]))
    def test_property_round_trip(self, files, algo):
        m = manifest_from_files(files, CHUNK, algo=algo)
        assert DatasetManifest.decode(m.encode()) == m
        assert DatasetManifest.from_json(m.to_json()) == m


class TestValidation:
    def test_rejects_unsorted_entries(self):
        entries = (
            FileEntry("b.txt", 0, 0, b""),
            FileEntry("a.txt", 0, 0, b""),
        )
        with pytest.raises(ValueError):
            DatasetManifest(CHUNK, ALGO_CRC32, (), entries)

    @pytest.mark.parametrize("path", ["/abs", "has/../dotdot", "sub\\win"])
    def test_rejects_unsafe_paths(self, path):
        with pytest.raises(ValueError):
            DatasetManifest(CHUNK, ALGO_CRC32, (),
                            (FileEntry(path, 0, 0, b""),))

    def test_entry_for_missing_path_raises(self):
        m = manifest_from_files({"a.txt": b"x"}, CHUNK)
        with pytest.raises(KeyError):
            m.entry_for("nope.txt")


class TestVerifyRange:
    def test_detects_in_place_corruption(self, tmp_path):
        payload = os.urandom(3 * CHUNK + 50)
        make_tree(tmp_path, {"v.bin": payload})
        m = scan_tree(str(tmp_path), CHUNK)
        entry = m.entry_for("v.bin")
        with open(tmp_path / "v.bin", "r+b") as fh:
            assert entry.verify_range(fh, 0, entry.size, CHUNK, m.algo) == []
            fh.seek(CHUNK + 5)
            fh.write(b"\x00\x01")
            fh.flush()
            assert entry.verify_range(
                fh, 0, entry.size, CHUNK, m.algo) == [1]
            # a range not covering chunk 1 still passes
            assert entry.verify_range(fh, 2 * CHUNK, CHUNK, CHUNK,
                                      m.algo) == []

    def test_short_file_counts_as_corrupt(self, tmp_path):
        make_tree(tmp_path, {"s.bin": b"a" * (2 * CHUNK)})
        m = scan_tree(str(tmp_path), CHUNK)
        entry = m.entry_for("s.bin")
        with open(tmp_path / "s.bin", "r+b") as fh:
            fh.truncate(CHUNK + 10)
        with open(tmp_path / "s.bin", "rb") as fh:
            assert 1 in entry.verify_range(fh, 0, entry.size, CHUNK, m.algo)
