"""Burst wire codec: equivalence with the per-packet codec.

The burst codec exists purely for speed; its contract is that every
byte on the wire and every decode outcome is identical to running
:func:`~repro.runtime.wire.encode_data` / ``decode_data`` once per
datagram.  The hypothesis properties here pin that contract across the
format matrix (checksum on/off × session extension on/off), including
the per-datagram rejection behaviour under corruption.
"""

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packets import DataPacket
from repro.runtime import wire


def _variants():
    return [
        (False, None),
        (True, None),
        (False, wire.SessionContext(transfer_id=0xABCDEF0123, epoch=7)),
        (True, wire.SessionContext(transfer_id=0xABCDEF0123, epoch=7)),
    ]


@st.composite
def bursts(draw):
    """A coherent burst: packets of one transfer plus their payloads."""
    total = draw(st.integers(min_value=1, max_value=500))
    n = draw(st.integers(min_value=1, max_value=12))
    packets, payloads = [], []
    for _ in range(n):
        payload = draw(st.binary(min_size=1, max_size=64))
        packets.append(DataPacket(
            seq=draw(st.integers(0, total - 1)), total=total,
            payload_bytes=len(payload),
            transmission=draw(st.integers(0, 5)),
        ))
        payloads.append(payload)
    return packets, payloads


class TestEncodeEquivalence:
    @settings(max_examples=60)
    @given(burst=bursts(), variant=st.sampled_from(range(4)))
    def test_burst_bytes_identical_to_per_packet(self, burst, variant):
        packets, payloads = burst
        checksum, session = _variants()[variant]
        singles = [wire.encode_data(p, pl, checksum, session)
                   for p, pl in zip(packets, payloads)]
        views = wire.encode_data_burst(packets, payloads, checksum, session)
        assert [bytes(v) for v in views] == singles

    def test_empty_burst(self):
        assert wire.encode_data_burst([], []) == []

    def test_length_mismatch_rejected(self):
        pkt = DataPacket(seq=0, total=1, payload_bytes=4)
        with pytest.raises(ValueError):
            wire.encode_data_burst([pkt], [b"toolongpayload"])
        with pytest.raises(ValueError):
            wire.encode_data_burst([pkt], [])

    def test_views_share_one_buffer(self):
        pkts = [DataPacket(seq=i, total=3, payload_bytes=8)
                for i in range(3)]
        views = wire.encode_data_burst(pkts, [bytes(8)] * 3)
        assert len({id(v.obj) for v in views}) == 1


class TestDecodeEquivalence:
    @settings(max_examples=60)
    @given(burst=bursts(), variant=st.sampled_from(range(4)))
    def test_burst_decode_matches_per_packet(self, burst, variant):
        packets, payloads = burst
        checksum, session = _variants()[variant]
        singles = [wire.encode_data(p, pl, checksum, session)
                   for p, pl in zip(packets, payloads)]
        results, errors = wire.decode_data_burst(singles, checksum, session)
        assert not errors
        for datagram, (pkt, payload) in zip(singles, results):
            ref_pkt, ref_payload = wire.decode_data(
                datagram, checksum, session)
            assert pkt == ref_pkt
            assert bytes(payload) == ref_payload

    @settings(max_examples=40)
    @given(burst=bursts(), data=st.data())
    def test_one_byte_flip_rejects_only_that_datagram(self, burst, data):
        packets, payloads = burst
        session = wire.SessionContext(transfer_id=5, epoch=1)
        singles = [wire.encode_data(p, pl, True, session)
                   for p, pl in zip(packets, payloads)]
        victim = data.draw(st.integers(0, len(singles) - 1))
        pos = data.draw(st.integers(0, len(singles[victim]) - 1))
        damaged = bytearray(singles[victim])
        damaged[pos] ^= data.draw(st.integers(1, 255))
        singles[victim] = bytes(damaged)
        results, errors = wire.decode_data_burst(singles, True, session)
        assert [i for i, _ in errors] == [victim]
        assert isinstance(errors[0][1], wire.ChecksumError)
        assert results[victim] is None
        for i, r in enumerate(results):
            if i != victim:
                assert r is not None and bytes(r[1]) == payloads[i]

    def test_mixed_wrong_session_and_stale_epoch(self):
        mine = wire.SessionContext(transfer_id=10, epoch=2)
        other = wire.SessionContext(transfer_id=11, epoch=2)
        stale = wire.SessionContext(transfer_id=10, epoch=1)
        pkt = DataPacket(seq=0, total=1, payload_bytes=4)
        burst = [wire.encode_data(pkt, b"good", session=mine),
                 wire.encode_data(pkt, b"evil", session=other),
                 wire.encode_data(pkt, b"dead", session=stale)]
        results, errors = wire.decode_data_burst(burst, session=mine)
        assert results[0] is not None and results[1] is None
        assert results[2] is None
        kinds = {i: type(e) for i, e in errors}
        assert kinds == {1: wire.SessionMismatchError, 2: wire.StaleEpochError}

    def test_truncated_datagrams_rejected_individually(self):
        pkt = DataPacket(seq=0, total=1, payload_bytes=4)
        good = wire.encode_data(pkt, b"abcd", checksum=True)
        burst = [b"\x00\x01", good, good[:wire._DATA_HDR.size + 1]]
        results, errors = wire.decode_data_burst(burst, checksum=True)
        assert results[1] is not None
        assert sorted(i for i, _ in errors) == [0, 2]
        for _, exc in errors:
            assert isinstance(exc, ValueError)

    def test_zero_copy_payload_views(self):
        pkt = DataPacket(seq=0, total=1, payload_bytes=4)
        backing = bytearray(wire.encode_data(pkt, b"abcd"))
        (result,), errors = wire.decode_data_burst([backing])
        assert not errors
        _decoded, payload = result
        assert isinstance(payload, memoryview)
        backing[-1] ^= 0xFF  # mutating the buffer shows through the view
        assert bytes(payload) != b"abcd"

    def test_empty_burst(self):
        assert wire.decode_data_burst([]) == ([], [])


class TestCrcTrailers:
    def test_trailer_is_crc_of_header_and_payload(self):
        pkts = [DataPacket(seq=i, total=2, payload_bytes=6) for i in range(2)]
        views = wire.encode_data_burst(pkts, [b"abcdef", b"ghijkl"],
                                       checksum=True)
        for v in views:
            body, trailer = bytes(v[:-4]), bytes(v[-4:])
            assert zlib.crc32(body) == int.from_bytes(trailer, "big")
