"""Tests for the seeded host-side fault injector (``repro.chaos``).

The injector's value is *replayability*: the same (schedule, seed) pair
must corrupt the same writes the same way, so a chaos failure found in
the matrix can be replayed under a debugger.  These tests pin the
semantics of each fault mode — torn writes persist a prefix while the
writer sees a full write, bit rot flips exactly one bit, scheduled
errors fire once at a store-wide op index, and a crash drops exactly
the unsynced pages.
"""

from __future__ import annotations

import errno

import numpy as np
import pytest

from repro.chaos import (
    FaultyStore,
    HostFaultSchedule,
    bit_rot,
    disk_full_at,
    torn_writes,
)


def payload(seed: int = 5, nbytes: int = 4096) -> bytes:
    return np.random.default_rng(seed).integers(
        0, 256, nbytes, dtype=np.uint8).tobytes()


class TestSchedule:
    def test_benign_default(self):
        assert HostFaultSchedule().benign
        assert not torn_writes(0.1).benign
        assert not disk_full_at(3).benign

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            HostFaultSchedule(torn_write_rate=1.5)
        with pytest.raises(ValueError):
            HostFaultSchedule(bitrot_rate=-0.1)

    def test_dict_round_trip(self):
        sched = HostFaultSchedule(
            torn_write_rate=0.25, bitrot_rate=0.1, read_flip_rate=0.05,
            error_ops=((7, "EIO"), (40, "ENOSPC")),
            crash_drops_unsynced=False)
        assert HostFaultSchedule.from_dict(sched.to_dict()) == sched

    def test_dict_round_trip_default(self):
        sched = HostFaultSchedule()
        assert HostFaultSchedule.from_dict(sched.to_dict()) == sched


class TestDeterminism:
    def damage_profile(self, seed: int):
        """Write 64 chunks through a faulty store; return what stuck."""
        import io

        sched = HostFaultSchedule(torn_write_rate=0.2, bitrot_rate=0.2)
        store = FaultyStore(sched, seed=seed)
        raw = io.BytesIO()
        ff = store.__class__.__mro__  # silence linters; not used
        del ff
        # Wrap the BytesIO through the same fault engine the file uses.
        from repro.chaos.hostfaults import FaultyFile

        f = FaultyFile(raw, store, "mem")
        store._open_files.append(f)
        for i in range(64):
            f.write(payload(i, 256))
        f.flush()
        return raw.getvalue(), (store.stats.torn_writes,
                                store.stats.bitrot_writes)

    def test_same_seed_same_damage(self):
        a_bytes, a_stats = self.damage_profile(42)
        b_bytes, b_stats = self.damage_profile(42)
        assert a_bytes == b_bytes
        assert a_stats == b_stats
        assert sum(a_stats) > 0  # the schedule actually fired

    def test_different_seed_different_damage(self):
        a_bytes, _ = self.damage_profile(42)
        b_bytes, _ = self.damage_profile(43)
        assert a_bytes != b_bytes


class TestTornWrites:
    def test_torn_write_persists_prefix_but_advances_position(self, tmp_path):
        store = FaultyStore(torn_writes(1.0), seed=1)
        path = str(tmp_path / "f.bin")
        data = payload(1, 1024)
        with store.open(path, "w+b") as f:
            assert f.write(data) == len(data)  # writer sees full success
            assert f.tell() == len(data)       # position advances fully
        on_disk = open(path, "rb").read()
        assert len(on_disk) < len(data)        # ...but a prefix persisted
        assert data.startswith(on_disk)
        assert store.stats.torn_writes == 1


class TestBitRot:
    def test_bitrot_flips_exactly_one_bit(self, tmp_path):
        store = FaultyStore(bit_rot(1.0), seed=2)
        path = str(tmp_path / "f.bin")
        data = payload(2, 2048)
        with store.open(path, "w+b") as f:
            f.write(data)
        on_disk = open(path, "rb").read()
        assert len(on_disk) == len(data)
        diff = np.frombuffer(on_disk, np.uint8) ^ np.frombuffer(data, np.uint8)
        assert int(np.unpackbits(diff).sum()) == 1

    def test_read_flip_leaves_disk_intact(self, tmp_path):
        sched = HostFaultSchedule(read_flip_rate=1.0)
        store = FaultyStore(sched, seed=3)
        path = str(tmp_path / "f.bin")
        data = payload(3, 512)
        open(path, "wb").write(data)
        with store.open(path, "rb") as f:
            seen = f.read()
        assert seen != data                  # readback was flipped...
        assert open(path, "rb").read() == data  # ...the medium is fine
        assert store.stats.read_flips == 1
        assert store.stats.corruptions >= 1


class TestScheduledErrors:
    def test_error_fires_once_at_store_wide_op(self, tmp_path):
        store = FaultyStore(disk_full_at(2, "ENOSPC"), seed=4)
        with store.open(str(tmp_path / "a.bin"), "w+b") as fa:
            fa.write(b"x" * 10)              # op 0
            with store.open(str(tmp_path / "b.bin"), "w+b") as fb:
                fb.write(b"y" * 10)          # op 1
                with pytest.raises(OSError) as exc:
                    fa.write(b"z" * 10)      # op 2 -> boom
                assert exc.value.errno == errno.ENOSPC
                # Transient: the very next op succeeds (retry survives).
                fa.write(b"z" * 10)
        assert store.stats.errors_injected == 1

    def test_eio_injection(self, tmp_path):
        store = FaultyStore(disk_full_at(0, "EIO"), seed=4)
        with store.open(str(tmp_path / "a.bin"), "w+b") as f:
            with pytest.raises(OSError) as exc:
                f.write(b"x")
            assert exc.value.errno == errno.EIO


class TestCrash:
    def test_crash_drops_unsynced_keeps_flushed(self, tmp_path):
        store = FaultyStore(HostFaultSchedule(), seed=5)
        path = str(tmp_path / "f.bin")
        f = store.open(path, "w+b")
        f.write(b"A" * 100)
        f.flush()                             # durable
        f.write(b"B" * 100)                   # page cache only
        dropped = store.crash()
        assert dropped >= 100
        on_disk = open(path, "rb").read()
        assert on_disk == b"A" * 100
        assert store.stats.crashes == 1
        assert store.stats.crash_dropped_bytes == dropped

    def test_crash_disabled_keeps_everything(self, tmp_path):
        store = FaultyStore(
            HostFaultSchedule(crash_drops_unsynced=False), seed=5)
        path = str(tmp_path / "f.bin")
        f = store.open(path, "w+b")
        f.write(b"A" * 100)
        f.write(b"B" * 100)
        store.crash()
        assert open(path, "rb").read() == b"A" * 100 + b"B" * 100

    def test_crash_rolls_back_overwrites_in_place(self, tmp_path):
        """An unsynced overwrite of old data reverts to the old bytes."""
        store = FaultyStore(HostFaultSchedule(), seed=6)
        path = str(tmp_path / "f.bin")
        f = store.open(path, "w+b")
        f.write(b"OLDOLDOLD")
        f.flush()
        f.seek(0)
        f.write(b"NEWNEWNEW")
        store.crash()
        assert open(path, "rb").read() == b"OLDOLDOLD"

    def test_text_mode_rejected(self, tmp_path):
        store = FaultyStore(HostFaultSchedule(), seed=0)
        with pytest.raises(ValueError):
            store.open(str(tmp_path / "f.txt"), "w")
