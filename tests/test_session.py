"""End-to-end tests for FOBS transfers over the simulated network."""

import pytest

from repro.core import FobsConfig, FobsTransfer, run_fobs_transfer

from _support import quick_config, tiny_path


class TestBasicTransfer:
    def test_small_transfer_completes(self):
        net = tiny_path()
        stats = run_fobs_transfer(net, 200_000, quick_config())
        assert stats.completed
        assert stats.npackets == 196
        assert stats.receiver_completed_at is not None
        assert stats.sender_completed_at is not None

    def test_sender_learns_completion_after_receiver(self):
        net = tiny_path()
        stats = run_fobs_transfer(net, 200_000, quick_config())
        assert stats.sender_completed_at > stats.receiver_completed_at

    def test_throughput_close_to_link_rate(self):
        net = tiny_path()  # 100 Mb/s, RTT 4 ms, no loss
        stats = run_fobs_transfer(net, 1_000_000, quick_config())
        assert stats.percent_of_bottleneck > 80

    def test_single_packet_object(self):
        net = tiny_path()
        stats = run_fobs_transfer(net, 100, quick_config(ack_frequency=1))
        assert stats.completed
        assert stats.npackets == 1

    def test_object_not_multiple_of_packet_size(self):
        net = tiny_path()
        stats = run_fobs_transfer(net, 100_001, quick_config())
        assert stats.completed
        assert stats.npackets == 98

    def test_invalid_nbytes_rejected(self):
        with pytest.raises(ValueError):
            FobsTransfer(tiny_path(), 0)

    def test_double_start_rejected(self):
        t = FobsTransfer(tiny_path(), 10_000)
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_time_limit_reports_incomplete(self):
        net = tiny_path(bandwidth_bps=1e5)  # 100 kb/s: 1 MB needs ~80 s
        stats = run_fobs_transfer(net, 1_000_000, quick_config(), time_limit=1.0)
        assert not stats.completed
        assert stats.percent_of_bottleneck < 100
        # A deadline expiry is explicitly marked, not silently dropped.
        assert stats.timed_out
        assert not stats.failed
        assert not stats.ok


class TestLossRecovery:
    def test_completes_under_heavy_loss(self):
        net = tiny_path(loss_rate=0.1, seed=1)
        stats = run_fobs_transfer(net, 200_000, quick_config())
        assert stats.completed
        assert stats.retransmissions > 0

    def test_waste_tracks_loss_rate(self):
        clean = run_fobs_transfer(tiny_path(), 500_000, quick_config())
        lossy = run_fobs_transfer(tiny_path(loss_rate=0.05, seed=2), 500_000,
                                  quick_config())
        assert lossy.wasted_fraction > clean.wasted_fraction

    def test_all_sent_implies_delivered_plus_lost_plus_dup(self):
        """Conservation: every receiver-new packet is unique."""
        net = tiny_path(loss_rate=0.05, seed=3)
        stats = run_fobs_transfer(net, 300_000, quick_config())
        assert stats.receiver_stats.packets_new == stats.npackets
        assert stats.packets_sent >= stats.npackets


class TestAckFrequencyEffects:
    def test_small_frequency_costs_performance(self):
        """F=1 overruns the receiver CPU on the paper's PC profile."""
        import repro.simnet as sn
        slow = run_fobs_transfer(sn.short_haul(), 2_000_000,
                                 FobsConfig(ack_frequency=1))
        fast = run_fobs_transfer(sn.short_haul(), 2_000_000,
                                 FobsConfig(ack_frequency=64))
        assert fast.percent_of_bottleneck > 1.5 * slow.percent_of_bottleneck

    def test_small_frequency_causes_receiver_drops(self):
        import repro.simnet as sn
        stats = run_fobs_transfer(sn.short_haul(), 2_000_000,
                                  FobsConfig(ack_frequency=1))
        assert stats.receiver_socket_drops > 0

    def test_ack_count_scales_inversely_with_frequency(self):
        few = run_fobs_transfer(tiny_path(), 500_000, quick_config(ack_frequency=64))
        many = run_fobs_transfer(tiny_path(), 500_000, quick_config(ack_frequency=8))
        assert many.acks_sent > 4 * few.acks_sent


class TestWasteAccounting:
    def test_waste_definition_identity(self):
        """wasted_fraction == (sent - required) / required, exactly."""
        net = tiny_path(loss_rate=0.02, seed=4)
        stats = run_fobs_transfer(net, 300_000, quick_config())
        expected = (stats.packets_sent - stats.npackets) / stats.npackets
        assert stats.wasted_fraction == pytest.approx(expected)

    def test_waste_is_tail_dominated_and_amortizes(self):
        """On a clean path waste comes from the final round-trip of
        greedy sending; it shrinks as the object grows."""
        small = run_fobs_transfer(tiny_path(), 250_000, quick_config())
        large = run_fobs_transfer(tiny_path(), 4_000_000, quick_config())
        assert large.wasted_fraction < small.wasted_fraction
        assert large.wasted_fraction < 0.05


class TestCongestionModes:
    def test_backoff_mode_completes(self):
        net = tiny_path(loss_rate=0.2, seed=5)
        stats = run_fobs_transfer(
            net, 200_000, quick_config(congestion_mode="backoff"))
        assert stats.completed

    def test_backoff_reduces_waste_under_persistent_loss(self):
        greedy = run_fobs_transfer(
            tiny_path(loss_rate=0.3, seed=6), 200_000,
            quick_config(congestion_mode="greedy"))
        backoff = run_fobs_transfer(
            tiny_path(loss_rate=0.3, seed=6), 200_000,
            quick_config(congestion_mode="backoff"))
        assert backoff.completed and greedy.completed
        # Backoff sends no *more* than greedy under identical loss.
        assert backoff.packets_sent <= greedy.packets_sent * 1.05

    def test_tcp_switch_triggers_under_heavy_loss(self):
        net = tiny_path(loss_rate=0.4, seed=7)
        stats = run_fobs_transfer(
            net, 300_000,
            quick_config(congestion_mode="tcp_switch", congestion_threshold=0.2),
            time_limit=300.0,
        )
        assert stats.switched_to_tcp
        assert stats.completed

    def test_tcp_switch_not_triggered_on_clean_path(self):
        net = tiny_path()
        stats = run_fobs_transfer(
            net, 300_000, quick_config(congestion_mode="tcp_switch"))
        assert not stats.switched_to_tcp
        assert stats.completed


class TestSchedulers:
    @pytest.mark.parametrize("policy", ["circular", "sequential_restart", "random"])
    def test_all_schedulers_complete(self, policy):
        net = tiny_path(loss_rate=0.02, seed=8)
        stats = run_fobs_transfer(net, 100_000, quick_config(scheduler=policy),
                                  time_limit=300.0)
        assert stats.completed

    def test_circular_wastes_least(self):
        results = {}
        for policy in ("circular", "sequential_restart"):
            net = tiny_path(loss_rate=0.02, seed=8)
            results[policy] = run_fobs_transfer(
                net, 100_000, quick_config(scheduler=policy), time_limit=300.0)
        assert (results["circular"].wasted_fraction
                < results["sequential_restart"].wasted_fraction)


class TestBatchPolicies:
    def test_adaptive_policy_completes(self):
        net = tiny_path()
        stats = run_fobs_transfer(net, 500_000, quick_config(batch_policy="adaptive"))
        assert stats.completed

    @pytest.mark.parametrize("batch", [1, 2, 8])
    def test_batch_sizes_complete(self, batch):
        net = tiny_path()
        stats = run_fobs_transfer(net, 200_000, quick_config(batch_size=batch))
        assert stats.completed
