"""``fobs-xfer`` CLI: flags, exit codes, resumable file transfers.

The bugfix under test: a failed transfer must exit nonzero with the
failure diagnosis on stderr (previously a loopback/stats-only failure
was invisible to scripts), and the PR 1 hardening knobs plus the
resume flags must be accepted by every subcommand.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.runtime.cli import build_parser, main
from repro.runtime.files import receive_file


class TestParser:
    @pytest.mark.parametrize("base", [
        ["send", "f.bin", "--port", "9"],
        ["recv", "--port", "9", "--output", "o.bin"],
        ["loopback"],
    ])
    def test_hardening_and_resume_flags_everywhere(self, base):
        args = build_parser().parse_args(base + [
            "--stall-timeout", "0.5", "--stall-abort-after", "2.0",
            "--no-checksum", "--resume", "--max-attempts", "4",
            "--journal-path", "x.journal",
        ])
        assert args.stall_timeout == 0.5
        assert args.stall_abort_after == 2.0
        assert args.no_checksum and args.resume
        assert args.max_attempts == 4
        assert args.journal_path == "x.journal"

    def test_defaults_leave_knobs_unset(self):
        args = build_parser().parse_args(["loopback"])
        assert args.stall_timeout is None
        assert args.stall_abort_after is None
        assert not args.no_checksum and not args.resume
        assert args.max_attempts == 1

    @pytest.mark.parametrize("base", [
        ["send", "f.bin", "--port", "9"],
        ["recv", "--port", "9", "--output", "o.bin"],
        ["loopback"],
    ])
    def test_quiet_flag_everywhere(self, base):
        assert build_parser().parse_args(base + ["--quiet"]).quiet
        assert not build_parser().parse_args(base).quiet

    def test_loopback_flags(self):
        args = build_parser().parse_args(
            ["loopback", "--nbytes", "5000", "--drop-rate", "0.1",
             "--blackhole-acks", "--seed", "3"])
        assert args.nbytes == 5000
        assert args.drop_rate == 0.1
        assert args.blackhole_acks and args.seed == 3


class TestLoopbackExitCodes:
    def test_success_exits_zero(self, capsys):
        rc = main(["loopback", "--nbytes", "100000", "--timeout", "30"])
        assert rc == 0
        assert "loopback ok" in capsys.readouterr().out

    def test_dead_ack_path_exits_nonzero_with_reason(self, capsys):
        """The bugfix: protocol-level aborts are script-visible."""
        rc = main(["loopback", "--nbytes", "100000", "--blackhole-acks",
                   "--stall-timeout", "0.1", "--stall-abort-after", "0.5",
                   "--timeout", "30"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "failure_reason=" in err
        assert "timed_out=" in err
        assert "stalled" in err

    def test_survivable_loss_still_succeeds(self, capsys):
        rc = main(["loopback", "--nbytes", "100000", "--drop-rate", "0.05",
                   "--timeout", "30"])
        assert rc == 0


class TestOutputDiscipline:
    """stdout carries exactly one machine-readable line; progress is
    stderr-only and silenced by --quiet."""

    def test_quiet_keeps_stdout_result_line_only(self, capsys):
        rc = main(["loopback", "--nbytes", "50000", "--timeout", "30",
                   "--quiet"])
        assert rc == 0
        captured = capsys.readouterr()
        lines = [line for line in captured.out.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("loopback ok ")
        assert "nbytes=50000" in lines[0]
        assert captured.err == ""

    def test_progress_goes_to_stderr_not_stdout(self, capsys):
        rc = main(["loopback", "--nbytes", "50000", "--timeout", "30"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "completed in" in captured.err
        assert "completed in" not in captured.out

    def test_quiet_never_silences_failures(self, capsys):
        rc = main(["loopback", "--nbytes", "100000", "--blackhole-acks",
                   "--stall-timeout", "0.1", "--stall-abort-after", "0.5",
                   "--timeout", "30", "--quiet"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert captured.out == ""


class TestSendRecvExitCodes:
    def test_send_to_nobody_exits_nonzero(self, tmp_path, capsys):
        src = tmp_path / "f.bin"
        src.write_bytes(b"x" * 1000)
        rc = main(["send", str(src), "--host", "127.0.0.1",
                   "--port", "47999", "--timeout", "2"])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err

    def test_recv_without_sender_exits_nonzero(self, tmp_path, capsys):
        rc = main(["recv", "--port", "47998", "--bind", "127.0.0.1",
                   "--output", str(tmp_path / "o.bin"), "--timeout", "1"])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err

    def test_resumable_round_trip_via_cli(self, tmp_path, capsys):
        rng = np.random.default_rng(2)
        blob = rng.integers(0, 256, size=200_000, dtype=np.uint8).tobytes()
        src = tmp_path / "src.bin"
        src.write_bytes(blob)
        out = tmp_path / "out.bin"
        ready = threading.Event()
        recv_result = {}

        def recv():
            recv_result["r"] = receive_file(
                str(out), 47997, bind="127.0.0.1", timeout=30, ready=ready,
                max_attempts=3)

        thread = threading.Thread(target=recv, daemon=True)
        thread.start()
        ready.wait(timeout=5)
        rc = main(["send", str(src), "--host", "127.0.0.1",
                   "--port", "47997", "--timeout", "30", "--resume",
                   "--max-attempts", "3"])
        thread.join(timeout=30)
        assert rc == 0
        assert out.read_bytes() == blob
        assert recv_result["r"].crc_ok
        captured = capsys.readouterr()
        assert "send ok" in captured.out
        assert "attempts=" in captured.out
