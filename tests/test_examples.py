"""Smoke tests: every example script runs to completion.

Each example is executed as a subprocess with a reduced workload where
it accepts one; the assertion is on exit status and a signature line of
output, keeping the examples from rotting.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.slow


def run_example(name, *args, timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "maximum" in out
        assert "%" in out

    def test_grid_data_transfer(self):
        out = run_example("grid_data_transfer.py", "--nbytes", "4000000",
                          "--seeds", "2")
        assert "FOBS" in out
        assert "ratio" in out

    def test_packet_size_tuning(self):
        out = run_example("packet_size_tuning.py")
        assert "32K" in out

    def test_real_sockets_loopback(self):
        out = run_example("real_sockets_loopback.py")
        assert "checksum ok: True" in out

    def test_congestion_fallback(self):
        out = run_example("congestion_fallback.py")
        assert "greedy" in out
        assert "tcp_switch" in out

    def test_multi_site_grid(self):
        out = run_example("multi_site_grid.py")
        assert "anl->lcse" in out
        assert "utilization" in out
