"""Unit tests for the RTT estimator / RTO computation (RFC 6298)."""

import pytest

from repro.tcp.rtt import RttEstimator


class TestRttEstimator:
    def test_first_sample_initializes(self):
        e = RttEstimator()
        e.sample(0.1)
        assert e.srtt == pytest.approx(0.1)
        assert e.rttvar == pytest.approx(0.05)
        assert e.rto == pytest.approx(0.3)

    def test_smoothing_converges(self):
        e = RttEstimator(min_rto=0.0 + 1e-9)
        for _ in range(100):
            e.sample(0.05)
        assert e.srtt == pytest.approx(0.05, rel=0.01)
        assert e.rto == pytest.approx(0.05, rel=0.2)

    def test_variance_raises_rto(self):
        stable = RttEstimator()
        jittery = RttEstimator()
        for i in range(50):
            stable.sample(0.1)
            jittery.sample(0.05 if i % 2 else 0.15)
        assert jittery.rto > stable.rto

    def test_min_rto_floor(self):
        e = RttEstimator(min_rto=0.2)
        for _ in range(20):
            e.sample(0.001)
        assert e.rto == 0.2

    def test_max_rto_ceiling(self):
        e = RttEstimator(max_rto=2.0)
        e.sample(10.0)
        assert e.rto == 2.0

    def test_backoff_doubles(self):
        e = RttEstimator(initial_rto=1.0)
        assert e.backoff() == 2.0
        assert e.backoff() == 4.0

    def test_backoff_capped(self):
        e = RttEstimator(initial_rto=1.0, max_rto=3.0)
        e.backoff()
        assert e.backoff() == 3.0

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().sample(-0.1)

    def test_sample_counter(self):
        e = RttEstimator()
        e.sample(0.1)
        e.sample(0.1)
        assert e.samples == 2
