"""Tests for the time-series monitor."""

import pytest

from repro.core import run_fobs_transfer
from repro.simnet.monitor import Monitor, Series

from _support import quick_config, tiny_path


class TestSeries:
    def test_append_and_stats(self):
        s = Series("x")
        s.append(0.0, 1.0)
        s.append(1.0, 3.0)
        assert s.mean() == 2.0
        assert s.max() == 3.0
        assert s.last == 3.0

    def test_empty_stats_rejected(self):
        with pytest.raises(ValueError):
            Series("x").mean()


class TestMonitor:
    def test_samples_on_interval(self):
        net = tiny_path()
        mon = Monitor(net.sim, interval=0.01)
        mon.add_probe("const", lambda: 7.0)
        mon.start()
        net.sim.run(until=0.1)
        series = mon.series["const"]
        assert 8 <= len(series.values) <= 11
        assert all(v == 7.0 for v in series.values)

    def test_duplicate_probe_rejected(self):
        mon = Monitor(tiny_path().sim)
        mon.add_probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            mon.add_probe("x", lambda: 0.0)

    def test_double_start_rejected(self):
        mon = Monitor(tiny_path().sim)
        mon.start()
        with pytest.raises(RuntimeError):
            mon.start()

    def test_stop_ends_sampling(self):
        net = tiny_path()
        mon = Monitor(net.sim, interval=0.01)
        mon.add_probe("x", lambda: 0.0)
        mon.start()
        net.sim.run(until=0.05)
        mon.stop()
        count = len(mon.series["x"].values)
        net.sim.run(until=0.2)
        assert len(mon.series["x"].values) == count

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Monitor(tiny_path().sim, interval=0.0)


class TestLinkProbes:
    def test_utilization_high_during_transfer(self):
        net = tiny_path()
        link = net.link_between("a", "r1")
        mon = Monitor(net.sim, interval=0.01)
        mon.watch_link_utilization(link)
        mon.start()
        run_fobs_transfer(net, 1_000_000, quick_config())
        series = mon.series[f"util:{link.name}"]
        assert series.max() > 0.8
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in series.values)

    def test_queue_depth_probe(self):
        net = tiny_path()
        link = net.link_between("a", "r1")
        mon = Monitor(net.sim, interval=0.005)
        mon.watch_queue_depth(link)
        mon.start()
        run_fobs_transfer(net, 500_000, quick_config())
        series = mon.series[f"queue:{link.name}"]
        assert len(series.values) > 0
        assert all(v >= 0 for v in series.values)

    def test_render_sparkline(self):
        net = tiny_path()
        mon = Monitor(net.sim, interval=0.01)
        mon.add_probe("ramp", lambda: net.sim.now)
        mon.start()
        net.sim.run(until=0.2)
        out = mon.render("ramp")
        assert "ramp" in out
        assert len(out) > 10

    def test_render_empty(self):
        mon = Monitor(tiny_path().sim)
        mon.add_probe("x", lambda: 0.0)
        assert "no samples" in mon.render("x")
