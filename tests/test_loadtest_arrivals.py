"""Property tests for the load-test arrival-process generators.

Two families, per the harness's determinism contract:

* **Seed determinism** — for any process shape and any seed, both
  generators (thinning and exact-*n*) reproduce identical arrays from
  equal seeds, and the arrays are sorted and confined to the horizon.
* **Rate fidelity** — the empirical mean rate of the thinning
  generator converges to the configured intensity (the expected count
  is the integral of ``rate_at`` over the horizon), within a
  statistical tolerance scaled to Poisson-count variance.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.loadtest import (
    DiurnalProcess,
    FlashCrowdProcess,
    PoissonProcess,
    generate_arrivals,
    sample_arrival_times,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

HORIZON = 50.0


def processes() -> st.SearchStrategy:
    """Random-but-valid arrival processes of every supported shape."""
    rates = st.floats(0.5, 40.0)
    poisson = st.builds(PoissonProcess, rate=rates)
    diurnal = st.builds(
        DiurnalProcess,
        base_rate=rates,
        amplitude=st.floats(0.0, 0.95),
        period=st.floats(5.0, 120.0),
        phase=st.floats(0.0, 2.0 * math.pi),
    )
    flash = st.builds(
        lambda base, flash, start, span: FlashCrowdProcess(
            base_rate=base, flash_rate=flash,
            flash_start=start, flash_end=start + span),
        base=rates,
        flash=st.floats(5.0, 120.0),
        start=st.floats(0.0, 30.0),
        span=st.floats(1.0, 20.0),
    )
    return st.one_of(poisson, diurnal, flash)


def mean_rate(process, horizon: float, grid: int = 20_000) -> float:
    """Numerical average of ``rate_at`` over the horizon."""
    ts = np.linspace(0.0, horizon, grid)
    return float(np.mean([process.rate_at(float(t)) for t in ts]))


class TestSeedDeterminism:
    @given(process=processes(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_thinning_reproduces_from_seed(self, process, seed):
        a = generate_arrivals(process, HORIZON,
                              np.random.default_rng(seed))
        b = generate_arrivals(process, HORIZON,
                              np.random.default_rng(seed))
        np.testing.assert_array_equal(a, b)
        assert np.all(np.diff(a) >= 0.0)
        if a.size:
            assert 0.0 <= a[0] and a[-1] < HORIZON

    @given(process=processes(), seed=st.integers(0, 2**32 - 1),
           n=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_exact_n_reproduces_from_seed(self, process, seed, n):
        a = sample_arrival_times(process, n, HORIZON,
                                 np.random.default_rng(seed))
        b = sample_arrival_times(process, n, HORIZON,
                                 np.random.default_rng(seed))
        np.testing.assert_array_equal(a, b)
        assert a.size == n
        assert np.all(np.diff(a) >= 0.0)
        if n:
            assert 0.0 <= a[0] and a[-1] <= HORIZON

    def test_different_seeds_differ(self):
        process = PoissonProcess(rate=10.0)
        a = generate_arrivals(process, HORIZON, np.random.default_rng(1))
        b = generate_arrivals(process, HORIZON, np.random.default_rng(2))
        assert a.size != b.size or not np.array_equal(a, b)


class TestRateFidelity:
    @given(process=processes(), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_empirical_mean_rate_within_tolerance(self, process, seed):
        expected = mean_rate(process, HORIZON) * HORIZON
        count = generate_arrivals(process, HORIZON,
                                  np.random.default_rng(seed)).size
        # Poisson count: sd = sqrt(mean).  5 sigma (plus a unit slack
        # for discretization) keeps false failures out of CI while
        # still catching any systematic rate bias.
        tolerance = 5.0 * math.sqrt(expected) + 1.0
        assert abs(count - expected) <= tolerance

    def test_poisson_long_run_rate(self):
        process = PoissonProcess(rate=20.0)
        horizon = 500.0
        count = generate_arrivals(process, horizon,
                                  np.random.default_rng(7)).size
        assert count / horizon == pytest.approx(20.0, rel=0.05)

    def test_flash_crowd_density_follows_intensity(self):
        process = FlashCrowdProcess(base_rate=2.0, flash_rate=40.0,
                                    flash_start=10.0, flash_end=20.0)
        times = sample_arrival_times(process, 4000, 40.0,
                                     np.random.default_rng(3))
        in_flash = np.count_nonzero((times >= 10.0) & (times < 20.0))
        # Intensity mass: flash window holds 400 of the 460 expected
        # arrivals (~87%).
        assert in_flash / times.size == pytest.approx(400 / 460, abs=0.03)

    def test_diurnal_peak_versus_trough(self):
        process = DiurnalProcess(base_rate=10.0, amplitude=0.8,
                                 period=40.0, phase=0.0)
        times = sample_arrival_times(process, 8000, 40.0,
                                     np.random.default_rng(9))
        # sin peaks in the first half-period and dips in the second.
        peak = np.count_nonzero(times < 20.0)
        trough = times.size - peak
        ratio = peak / trough
        # Intensity mass ratio between halves: (1 + 2*amp/pi)/(1 - 2*amp/pi).
        expected = (1 + 2 * 0.8 / math.pi) / (1 - 2 * 0.8 / math.pi)
        assert ratio == pytest.approx(expected, rel=0.1)
