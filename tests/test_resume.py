"""Crash-resumable transfers: supervisor, kill injection, epochs.

Covers the PR's acceptance criteria: a transfer killed at a seeded
mid-flight point completes after resume with a byte-identical object,
retransmitting strictly fewer packets than a full restart (asserted
quantitatively on the deterministic DES backend), and a stale-epoch
datagram from a previous attempt never lands in the resumed object.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.diagnostics import recovery_report
from repro.core.config import FobsConfig
from repro.core.receiver import FobsReceiver
from repro.core.sender import FobsSender
from repro.core.session import FobsTransfer
from repro.runtime import wire
from repro.runtime.supervisor import (
    RetryPolicy,
    TransferSupervisor,
    run_resumable_fobs_transfer,
    run_resumable_loopback,
)
from repro.simnet.faults import KillSwitch

from _support import tiny_path

NBYTES = 400_000


def des_config(**overrides) -> FobsConfig:
    defaults = dict(ack_frequency=16, stall_timeout=0.3,
                    stall_abort_after=3.0, receiver_idle_timeout=6.0)
    defaults.update(overrides)
    return FobsConfig(**defaults)


def loop_config(**overrides) -> FobsConfig:
    defaults = dict(packet_size=1024, ack_frequency=32, batch_size=64,
                    stall_timeout=0.1, stall_abort_after=0.4,
                    receiver_idle_timeout=2.0, checksum=True)
    defaults.update(overrides)
    return FobsConfig(**defaults)


# ---------------------------------------------------------------------------
# RetryPolicy / TransferSupervisor units
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_delay=0)

    def test_delay_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             jitter=0.25, max_delay=0.5, seed=7)
        a = [policy.delay(i, np.random.default_rng(7)) for i in range(6)]
        b = [policy.delay(i, np.random.default_rng(7)) for i in range(6)]
        assert a == b
        for i, d in enumerate(a):
            assert d <= 0.5
            assert d >= min(0.1 * 2.0 ** i * 0.75, 0.5) - 1e-12

    def test_no_jitter_is_pure_exponential(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             jitter=0.0, max_delay=100.0)
        rng = np.random.default_rng(0)
        assert [policy.delay(i, rng) for i in range(3)] == [0.1, 0.2, 0.4]


class _FakeOutcome:
    def __init__(self, completed, packets_sent=10, resumed=0, reason=None):
        self.completed = completed
        self.packets_sent = packets_sent
        self.resumed_packets = resumed
        self.failure_reason = reason
        self.retransmissions = 0


class TestSupervisor:
    def test_retries_until_success(self):
        calls = []

        def attempt(attempt, epoch):
            calls.append((attempt, epoch))
            if attempt < 2:
                return _FakeOutcome(False, reason=f"boom {attempt}")
            return _FakeOutcome(True, resumed=30)

        sup = TransferSupervisor(RetryPolicy(max_attempts=5, backoff_base=0),
                                 sleep=None)
        result = sup.run(attempt, npackets=100)
        assert calls == [(0, 0), (1, 1), (2, 2)]
        assert result.completed and result.attempts == 3
        assert result.retries == 2
        assert result.packets_salvaged == 30
        assert result.total_packets_sent == 30
        assert result.failure_reason is None
        assert [r.epoch for r in result.attempt_records] == [0, 1, 2]

    def test_exhausted_budget_reports_last_failure(self):
        sup = TransferSupervisor(RetryPolicy(max_attempts=3, backoff_base=0),
                                 sleep=None)
        result = sup.run(lambda a, e: _FakeOutcome(False, reason=f"dead {a}"),
                         npackets=100)
        assert not result.completed
        assert result.attempts == 3
        assert result.failure_reason == "dead 2"
        assert "FAILED" in str(result)

    def test_backoff_sleeps_are_policy_delays(self):
        slept = []
        sup = TransferSupervisor(
            RetryPolicy(max_attempts=3, backoff_base=0.1, jitter=0.0,
                        backoff_factor=2.0),
            sleep=slept.append)
        sup.run(lambda a, e: _FakeOutcome(False, reason="x"))
        assert slept == [0.1, 0.2]

    def test_recovery_report_accounting(self):
        sup = TransferSupervisor(RetryPolicy(max_attempts=2, backoff_base=0),
                                 sleep=None)
        result = sup.run(
            lambda a, e: _FakeOutcome(a == 1, packets_sent=60, resumed=40),
            npackets=100)
        report = recovery_report(result, packet_size=1000)
        assert report.packets_salvaged == 40
        assert report.bytes_salvaged == 40_000
        assert report.total_packets_sent == 120
        assert report.resume_overhead == pytest.approx(0.2)
        assert "salvaged 40/100" in report.render()


# ---------------------------------------------------------------------------
# KillSwitch
# ---------------------------------------------------------------------------
class TestKillSwitch:
    def test_validation(self):
        with pytest.raises(ValueError):
            KillSwitch(target="router", after_packets=5)
        with pytest.raises(ValueError):
            KillSwitch(target="sender", after_packets=0)

    def test_fires_once(self):
        kill = KillSwitch(target="receiver", after_packets=3)
        assert not kill.should_fire(2)
        assert kill.should_fire(3)
        kill.fire(1.5)
        assert kill.fired and kill.fired_at == 1.5
        assert not kill.should_fire(10)

    def test_seeded_is_deterministic_and_mid_flight(self):
        kills = [KillSwitch.seeded("sender", 1000, seed=42) for _ in range(3)]
        assert len({k.after_packets for k in kills}) == 1
        assert 250 <= kills[0].after_packets <= 750


# ---------------------------------------------------------------------------
# DES backend: deterministic kill → resume
# ---------------------------------------------------------------------------
class TestDesResume:
    def _run(self, tmp_path, target: str, name: str, journal: bool = True):
        config = des_config()
        kill = {0: KillSwitch.seeded(target, config.npackets(NBYTES), seed=5)}
        if journal:
            return run_resumable_fobs_transfer(
                lambda attempt: tiny_path(seed=200 + attempt),
                nbytes=NBYTES, config=config,
                journal_path=str(tmp_path / name), transfer_id=11,
                kill_plan=kill, policy=RetryPolicy(max_attempts=3),
                sleep=None, time_limit=120.0)
        # Full-restart baseline: same crash, no journal, no resume.
        def attempt_fn(attempt, epoch):
            return FobsTransfer(
                tiny_path(seed=200 + attempt), NBYTES, config, epoch=epoch,
                kill_switch=kill.get(attempt),
            ).run(time_limit=120.0)

        return TransferSupervisor(RetryPolicy(max_attempts=3),
                                  sleep=None).run(
            attempt_fn, npackets=config.npackets(NBYTES))

    @pytest.mark.parametrize("target", ["receiver", "sender"])
    def test_killed_transfer_resumes(self, tmp_path, target):
        result = self._run(tmp_path, target, f"{target}.journal")
        assert result.completed
        assert result.attempts == 2
        assert result.attempt_records[0].crashed == target
        assert result.packets_salvaged > 0
        assert result.final.receiver_stats.packets_new + \
            result.packets_salvaged == result.npackets
        # Journal cleaned up on success.
        assert not os.path.exists(str(tmp_path / f"{target}.journal"))

    @pytest.mark.parametrize("target", ["receiver", "sender"])
    def test_resume_deterministic_under_fixed_seed(self, tmp_path, target):
        a = self._run(tmp_path, target, "a.journal")
        b = self._run(tmp_path, target, "b.journal")
        keys = [(r.attempt, r.completed, r.crashed, r.packets_sent,
                 r.resumed_packets, r.retransmissions)
                for r in a.attempt_records]
        assert keys == [(r.attempt, r.completed, r.crashed, r.packets_sent,
                         r.resumed_packets, r.retransmissions)
                        for r in b.attempt_records]
        assert a.packets_salvaged == b.packets_salvaged

    def test_resume_retransmits_strictly_less_than_full_restart(
        self, tmp_path
    ):
        resumed = self._run(tmp_path, "receiver", "r.journal")
        restart = self._run(tmp_path, "receiver", "unused", journal=False)
        assert resumed.completed and restart.completed
        # Identical crash on attempt 0; attempt 1 resumes vs restarts.
        assert (resumed.attempt_records[0].packets_sent
                == restart.attempt_records[0].packets_sent)
        assert resumed.packets_salvaged > 0
        assert restart.packets_salvaged == 0
        assert (resumed.attempt_records[1].packets_sent
                < restart.attempt_records[1].packets_sent)
        # And the supervised totals follow.
        assert resumed.total_packets_sent < restart.total_packets_sent

    def test_crash_free_run_is_single_attempt(self, tmp_path):
        result = run_resumable_fobs_transfer(
            lambda attempt: tiny_path(seed=77),
            nbytes=NBYTES, config=des_config(),
            journal_path=str(tmp_path / "clean.journal"), transfer_id=3,
            policy=RetryPolicy(max_attempts=3), sleep=None, time_limit=120.0)
        assert result.completed and result.attempts == 1
        assert result.packets_salvaged == 0


# ---------------------------------------------------------------------------
# Loopback backend: real sockets, kill → resume, byte identity
# ---------------------------------------------------------------------------
class TestLoopbackResume:
    @pytest.mark.parametrize("target", ["receiver", "sender"])
    def test_killed_transfer_resumes_byte_identical(self, tmp_path, target):
        config = loop_config()
        rng = np.random.default_rng(9)
        data = rng.integers(0, 256, size=NBYTES, dtype=np.uint8).tobytes()
        kill = {0: KillSwitch.seeded(target, config.npackets(NBYTES), seed=6)}
        result = run_resumable_loopback(
            nbytes=NBYTES, config=config,
            journal_path=str(tmp_path / "loop.journal"), transfer_id=21,
            kill_plan=kill, policy=RetryPolicy(max_attempts=4,
                                               backoff_base=0.01, seed=1),
            sleep=None, seed=9, data=data, timeout=30.0)
        assert result.completed
        assert result.attempt_records[0].crashed == target
        # checksum_ok is the byte-identity proof: the supervisor scrubs
        # unjournaled buffer regions between attempts, so only the
        # journal + retransmissions can have produced these bytes.
        assert result.final.checksum_ok
        if target == "receiver":
            # The receiver journaled before dying: progress salvaged.
            assert result.packets_salvaged > 0
        assert not os.path.exists(str(tmp_path / "loop.journal"))

    def test_resume_repeatable_under_fixed_seed(self, tmp_path):
        """Same seeds → same crash point, completion and byte identity.

        Thread scheduling keeps loopback packet counters from being
        bit-deterministic (that is asserted on the DES backend); what
        must be repeatable here is the injected crash and the outcome.
        """
        config = loop_config()
        outcomes = []
        for run in range(2):
            kill = KillSwitch.seeded("receiver", config.npackets(NBYTES),
                                     seed=13)
            result = run_resumable_loopback(
                nbytes=NBYTES, config=config,
                journal_path=str(tmp_path / f"rep{run}.journal"),
                transfer_id=31, kill_plan={0: kill},
                policy=RetryPolicy(max_attempts=4, backoff_base=0.01),
                sleep=None, seed=13, timeout=30.0)
            outcomes.append((kill.after_packets, result.completed,
                             result.attempt_records[0].crashed,
                             result.final.checksum_ok))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1:] == (True, "receiver", True)


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestKillAnywhereProperty:
    """Killing the transfer at *any* seeded point resumes byte-identically.

    The kill point is Hypothesis-chosen across the whole object —
    including before the first journal flush (salvage 0, full
    retransmit) and past the last packet (the kill never fires) — and
    the delivered object must equal the source bytes every time.
    """

    @given(after_packets=st.integers(1, 130), data_seed=st.integers(0, 999))
    @settings(max_examples=8, deadline=None)
    def test_loopback_kill_anywhere_byte_identical(
        self, tmp_path_factory, after_packets, data_seed
    ):
        tmp = tmp_path_factory.mktemp("killany")
        config = loop_config()
        nbytes = 120_000  # 118 packets: kill points past the end included
        rng = np.random.default_rng(data_seed)
        data = rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()
        kill = KillSwitch(target="receiver", after_packets=after_packets)
        result = run_resumable_loopback(
            nbytes=nbytes, config=config,
            journal_path=str(tmp / "j.journal"), transfer_id=99,
            kill_plan={0: kill},
            policy=RetryPolicy(max_attempts=4, backoff_base=0.01, jitter=0.0),
            sleep=None, seed=data_seed, data=data, timeout=30.0)
        assert result.completed
        assert result.final.checksum_ok
        if not kill.fired:
            assert result.attempts == 1  # kill point beyond the object


# ---------------------------------------------------------------------------
# Stale-epoch rejection
# ---------------------------------------------------------------------------
class TestStaleEpoch:
    def test_receiver_drops_without_marking_or_liveness(self):
        config = des_config()
        receiver = FobsReceiver(config, NBYTES, epoch=2)
        before = receiver.bitmap.count
        receiver.on_stale_data(0)
        assert receiver.bitmap.count == before
        assert receiver.stats.stale_epoch_data == 1
        assert receiver.last_data_time is None  # liveness NOT refreshed

    def test_sender_drops_stale_ack(self):
        config = des_config()
        sender = FobsSender(config, NBYTES, rng=np.random.default_rng(0),
                            epoch=2)
        sender.on_stale_ack()
        assert sender.stats.stale_epoch_acks == 1
        assert sender.acked.count == 0

    def test_wire_rejects_wrong_epoch_and_transfer(self):
        current = wire.SessionContext(transfer_id=7, epoch=2)
        stale = wire.SessionContext(transfer_id=7, epoch=1)
        foreign = wire.SessionContext(transfer_id=8, epoch=2)
        from repro.core.packets import AckPacket, DataPacket

        pkt = DataPacket(seq=0, total=4, payload_bytes=4, transmission=0)
        for bad, exc in ((stale, wire.StaleEpochError),
                         (foreign, wire.SessionMismatchError)):
            datagram = wire.encode_data(pkt, b"abcd", checksum=True,
                                        session=bad)
            with pytest.raises(exc):
                wire.decode_data(datagram, checksum=True, session=current)
        ack = AckPacket(ack_id=0, received_count=1,
                        bitmap=np.array([True, False, False, False]))
        with pytest.raises(wire.StaleEpochError):
            wire.decode_ack(wire.encode_ack(ack, session=stale),
                            session=current)

    def test_stale_datagram_never_lands_in_loopback_object(self):
        """End to end: zombie datagrams are counted, never applied."""
        from repro.runtime.transfer import _Receiver, _Sender

        config = loop_config()
        rng = np.random.default_rng(4)
        data = rng.integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
        current = wire.SessionContext(transfer_id=55, epoch=3)
        zombie = wire.SessionContext(transfer_id=55, epoch=2)
        deadline = time.monotonic() + 30.0
        receiver = _Receiver(config, len(data), data_port=0,
                             ack_addr=("127.0.0.1", 0),
                             ctrl_addr=("127.0.0.1", 0), deadline=deadline,
                             session=current)
        sender = _Sender(config, data,
                         data_addr=("127.0.0.1", receiver.data_port),
                         ack_port=0, deadline=deadline, session=current)
        receiver._ack_addr = ("127.0.0.1", sender.ack_port)
        receiver._ctrl_addr = sender.ctrl_addr

        # Queue zombie datagrams from the "previous attempt" carrying
        # garbage payloads at in-range sequence numbers.
        import socket as socket_mod

        zombie_sock = socket_mod.socket(socket_mod.AF_INET,
                                        socket_mod.SOCK_DGRAM)
        from repro.core.packets import DataPacket

        npackets = config.npackets(len(data))
        for seq in range(5):
            pkt = DataPacket(seq=seq, total=npackets,
                             payload_bytes=config.packet_size,
                             transmission=0)
            zombie_sock.sendto(
                wire.encode_data(pkt, b"\xff" * config.packet_size,
                                 checksum=config.checksum, session=zombie),
                ("127.0.0.1", receiver.data_port))
        zombie_sock.close()

        receiver.start()
        sender.start()
        sender.join(timeout=35)
        receiver.join(timeout=5)
        assert sender.error is None and receiver.error is None
        assert receiver.receiver.complete
        assert receiver.receiver.stats.stale_epoch_data >= 1
        # The zombie's 0xff payloads never landed: byte-identical.
        assert bytes(receiver.buffer) == data
