"""Tests for the framed message channel over TCP."""

import pytest

from repro.tcp.channel import MessageChannel

from _support import tiny_path


class TestMessageChannel:
    def test_messages_delivered_in_order(self):
        net = tiny_path()
        got = []
        ch = MessageChannel(net.sim, net.a, net.b, 5500, got.append)
        ch.send({"id": 1}, 100)
        ch.send({"id": 2}, 200)
        net.sim.run(until=5.0)
        assert got == [{"id": 1}, {"id": 2}]

    def test_send_before_established_is_queued(self):
        net = tiny_path()
        got = []
        ch = MessageChannel(net.sim, net.a, net.b, 5500, got.append)
        # no sim.run yet: handshake incomplete
        ch.send("early", 50)
        net.sim.run(until=5.0)
        assert got == ["early"]

    def test_large_message_arrives_whole(self):
        net = tiny_path()
        got = []
        ch = MessageChannel(net.sim, net.a, net.b, 5500, got.append)
        ch.send("big", 50_000)  # spans many segments
        net.sim.run(until=5.0)
        assert got == ["big"]

    def test_message_timing_scales_with_size(self):
        net = tiny_path()
        times = {}

        def record(tag):
            times[tag] = net.sim.now

        ch = MessageChannel(net.sim, net.a, net.b, 5500, record)
        ch.send("small", 10)
        net.sim.run(until=5.0)
        t_small = times["small"]
        ch.send("large", 200_000)
        net.sim.run(until=30.0)
        assert times["large"] - t_small > 0.01  # many RTTs of slow start

    def test_survives_lossy_path(self):
        net = tiny_path(loss_rate=0.05, seed=2)
        got = []
        ch = MessageChannel(net.sim, net.a, net.b, 5500, got.append)
        for i in range(5):
            ch.send(i, 1000)
        net.sim.run(until=60.0)
        assert got == [0, 1, 2, 3, 4]

    def test_negative_size_rejected(self):
        net = tiny_path()
        ch = MessageChannel(net.sim, net.a, net.b, 5500, lambda m: None)
        with pytest.raises(ValueError):
            ch.send("x", -1)

    def test_close_releases_ports(self):
        net = tiny_path()
        ch = MessageChannel(net.sim, net.a, net.b, 5500, lambda m: None)
        net.sim.run(until=1.0)
        ch.close()
        MessageChannel(net.sim, net.a, net.b, 5500, lambda m: None)
