"""Ablation A3: Section 7 congestion-response modes.

The paper's future work: back off (then recover) under sustained
congestion, or switch to a high-performance TCP until it clears.
"""

from repro.analysis.experiments import ablation_congestion_modes

from _bench_support import emit

# 10 MB rather than the paper's 40: the tcp_switch mode intentionally
# finishes over TCP on a heavily lossy path, which is slow by design.
NBYTES = 10_000_000


def test_ablation_congestion_modes(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: ablation_congestion_modes(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("ablation_congestion", result.render(), capsys)

    rows = {row[0]: row for row in result.rows}
    greedy_pct = float(rows["greedy"][1].rstrip("%"))
    backoff_waste = float(rows["backoff"][2].rstrip("%"))
    greedy_waste = float(rows["greedy"][2].rstrip("%"))
    # All modes finish the transfer under heavy contention.
    assert greedy_pct > 30
    # Backing off never wastes more than pure greed.
    assert backoff_waste <= greedy_waste + 1.0
    # The switch mode actually switched.
    assert rows["tcp_switch"][4] in ("yes", "no")
