"""Baseline shootout: FOBS vs TCP+LWE vs PSockets vs RBUDP vs SABUL.

Positions FOBS against every protocol the paper's related-work section
discusses, on the clean long haul and the contended path.
"""

from repro.analysis.experiments import baseline_shootout

from _bench_support import emit

NBYTES = 40_000_000


def test_baseline_shootout(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: baseline_shootout(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("shootout", result.render(), capsys)

    by_path = {row[0]: [float(c.rstrip("%")) for c in row[1:]] for row in result.rows}
    fobs, tcp, ps, rudp, sabul = by_path["contended"]
    # On the contended path FOBS leads every protocol that interprets
    # loss as congestion.
    assert fobs > tcp
    assert fobs > ps
    assert fobs > sabul
