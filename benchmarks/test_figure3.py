"""Figure 3: FOBS % of max bandwidth vs UDP packet size (GigE / OC-12).

Paper: performance rises strongly with packet size and peaks around
52% of the OC-12 (~40 MB/s) — the endpoints' per-packet costs bound
the achievable packet rate.
"""

from repro.analysis.experiments import figure3

from _bench_support import emit

SIZES = (1024, 2048, 4096, 8192, 16384, 32768)
NBYTES = 40_000_000


def test_figure3(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figure3(nbytes=NBYTES, packet_sizes=SIZES),
        rounds=1, iterations=1,
    )
    emit("figure3", result.render(), capsys)

    series = result.series["% of OC-12 vs packet size (paper: rises to ~52%)"]
    values = [v for _, v in series]
    # Monotone rise across the sweep...
    assert all(a < b for a, b in zip(values, values[1:]))
    # ...from single digits at 1K to the neighbourhood of the paper's 52%.
    assert values[0] < 12
    assert 40 < values[-1] < 60
