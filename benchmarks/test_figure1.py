"""Figure 1: FOBS % of max bandwidth vs acknowledgement frequency.

Paper: ~90% of the available bandwidth on both the short haul (26 ms)
and long haul (65 ms) connections at sensible ack frequencies.
"""

from repro.analysis.experiments import figure1

from _bench_support import emit

FREQUENCIES = (1, 2, 4, 8, 16, 64, 256, 1024)
NBYTES = 40_000_000  # the paper's transfer size


def test_figure1(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figure1(nbytes=NBYTES, frequencies=FREQUENCIES),
        rounds=1, iterations=1,
    )
    emit("figure1", result.render(), capsys)

    short = dict(result.series["short haul (paper: ~90% at plateau)"])
    long_ = dict(result.series["long haul (paper: ~90% at plateau)"])
    # Shape: plateau near the paper's ~90% on both hauls...
    assert short[64] > 85
    assert long_[64] > 85
    # ...and a clear penalty when acknowledging every packet.
    assert short[1] < 0.6 * short[64]
    assert long_[1] < 0.6 * long_[64]
