"""Telemetry overhead smoke — the PR 5 acceptance gate.

Two claims to hold:

* an attached-but-sinkless (disabled) bus must not perturb the
  transfer at all — the DES is deterministic, so the simulated stats
  must be *identical*, not merely close;
* recording to JSONL must stay cheap (the issue's bar: <= 1 %
  throughput delta disabled, <= 5 % recording).

Wall-clock on shared CI runners is noisy, so the hard assertions are
on the simulated outcome (exact) and the wall-time ratios get generous
headroom; the measured percentages are emitted to
``benchmarks/results/telemetry_overhead.txt`` for EXPERIMENTS.md.
"""

import io
import time

from repro.core import FobsConfig, run_fobs_transfer
from repro.simnet.topology import HopSpec, PathSpec, build_path
from repro.telemetry import EventBus, JsonlSink

NBYTES = 2_000_000
LOSS = 0.02


def _net(seed=7):
    spec = PathSpec(
        "bench", "a", "b",
        hops=(HopSpec(1e8, 1e-3, queue_bytes=1 << 20, loss_rate=LOSS),),
        bottleneck_bps=1e8,
    )
    return build_path(spec, seed=seed)


def _run(telemetry=None):
    return run_fobs_transfer(_net(), NBYTES, FobsConfig(ack_frequency=16),
                             telemetry=telemetry)


def _stats_key(stats):
    return (stats.completed, stats.duration, stats.throughput_bps,
            stats.packets_sent, stats.retransmissions,
            stats.wasted_fraction)


def _timed(make_bus, repeats=3):
    best = float("inf")
    stats = None
    for _ in range(repeats):
        bus = make_bus()
        t0 = time.perf_counter()
        stats = _run(telemetry=bus)
        best = min(best, time.perf_counter() - t0)
        if bus is not None:
            bus.close()
    return best, stats


def test_telemetry_overhead(capsys):
    from _bench_support import emit

    base_t, base = _timed(lambda: None)
    off_t, off = _timed(lambda: EventBus())  # attached, no sinks
    jsonl_t, rec = _timed(lambda: EventBus(
        sinks=[JsonlSink(io.StringIO(), producer="bench")]))

    # The protocol must be untouched by instrumentation: identical
    # simulated outcomes in all three configurations.
    assert _stats_key(off) == _stats_key(base)
    assert _stats_key(rec) == _stats_key(base)
    assert base.completed

    off_pct = 100.0 * (off_t - base_t) / base_t
    jsonl_pct = 100.0 * (jsonl_t - base_t) / base_t
    emit("telemetry_overhead", "\n".join([
        "telemetry overhead (DES, 2 MB @ 100 Mb/s, 2% loss, best of 3)",
        f"  baseline (no bus):   {base_t * 1e3:8.1f} ms",
        f"  disabled (no sinks): {off_t * 1e3:8.1f} ms  ({off_pct:+.1f}%)",
        f"  JSONL recording:     {jsonl_t * 1e3:8.1f} ms  ({jsonl_pct:+.1f}%)",
        "  simulated stats identical across all three: yes",
    ]), capsys)

    # Wall-clock gates, with CI-noise headroom over the 1% / 5% bars.
    assert off_t <= base_t * 1.25, (
        f"disabled telemetry cost {off_pct:.1f}% wall time")
    assert jsonl_t <= base_t * 2.0, (
        f"JSONL recording cost {jsonl_pct:.1f}% wall time")
