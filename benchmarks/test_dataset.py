"""Dataset transfers on the DES — packing vs per-file sessions.

Produces ``benchmarks/results/BENCH_dataset.json``::

    {"bench": "dataset", "schema": 1, "entries": [
        {"name": "packed", ...},    # 10k-file tree as packed objects
        {"name": "naive", ...},     # per-file sessions (1k sample)
        {"name": "resume", ...}     # killed at K objects: resume vs restart
    ]}

The workload is the small-file wall every naive tree-copy hits: ~10k
files of a few hundred bytes next to a handful of striped multi-object
files, on the paper's short-haul topology.  The naive baseline pays a
full control handshake and admission round-trip per file, so its
files/sec is a *rate* — flat in the number of files — and is measured
on a 1,000-file sample of the same tree to keep the suite fast (the
full 10k naive run takes ~5 minutes of wall clock and the same rate).

Deterministic end to end: seeded tree spec, seeded topology, DES time
only.  Run with ``pytest -m dataset benchmarks/test_dataset.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.dataset import (
    PackingConfig,
    mixed_tree_spec,
    plan_objects,
    run_sim_dataset,
    run_sim_naive,
    run_sim_resume,
    scan_tree,
)
from repro.dataset.manifest import DatasetManifest
from repro.simnet.topology import short_haul

from _bench_support import RESULTS_DIR, emit

pytestmark = pytest.mark.dataset

BENCH_PATH = RESULTS_DIR / "BENCH_dataset.json"

CHUNK = 16 * 1024
PACKING = PackingConfig(object_bytes=256 * 1024, pack_threshold=64 * 1024)
NSMALL = 10_000
NAIVE_SAMPLE = 1_000
KILL_AFTER = 8
SEED = 42


@pytest.fixture(scope="module")
def manifest(tmp_path_factory) -> DatasetManifest:
    root = tmp_path_factory.mktemp("dataset-bench")
    src = str(root / "tree")
    mixed_tree_spec(nsmall=NSMALL, small_bytes=300, nmedium=20,
                    medium_bytes=50_000, nlarge=3, large_bytes=700_000,
                    seed=SEED).generate(src)
    return scan_tree(src, CHUNK)


def _sample(manifest: DatasetManifest, n: int) -> DatasetManifest:
    """First ``n`` non-empty files of the tree, as their own manifest."""
    picked = [e for e in manifest.entries if e.size > 0][:n]
    return DatasetManifest(chunk_size=manifest.chunk_size,
                           algo=manifest.algo, dirs=(),
                           entries=tuple(picked))


def test_dataset_bench(manifest, capsys):
    plan = plan_objects(manifest, PACKING)
    packed = run_sim_dataset(short_haul(seed=1), manifest,
                             packing=PACKING, max_active=8)
    assert packed.all_ok, "packed DES run failed"

    sample = _sample(manifest, NAIVE_SAMPLE)
    naive = run_sim_naive(short_haul(seed=1), sample, max_active=8,
                          time_limit=20_000.0)
    assert naive.all_ok, "naive DES run failed"

    resume, restart = run_sim_resume(
        lambda: short_haul(seed=2), manifest, KILL_AFTER,
        packing=PACKING, max_active=8)
    assert resume.all_ok and restart.all_ok
    assert resume.packets_sent < restart.packets_sent

    speedup = packed.files_per_sec / naive.files_per_sec
    saved = 1.0 - resume.packets_sent / restart.packets_sent
    assert speedup > 10, f"packing speedup collapsed: {speedup:.1f}x"

    entries = [
        {
            "name": "packed",
            "nfiles": manifest.nfiles,
            "bytes": manifest.total_bytes,
            "sessions": packed.nsessions,
            "objects": plan.nobjects,
            "kind_counts": plan.counts(),
            "files_per_sec": round(packed.files_per_sec, 1),
            "goodput_mbps": round(packed.goodput_bps / 1e6, 3),
            "duration_s": round(packed.duration, 3),
            "packets_sent": packed.packets_sent,
        },
        {
            "name": "naive",
            "nfiles": sample.nfiles,
            "note": f"per-file sessions on a {NAIVE_SAMPLE}-file sample "
                    f"of the same tree (steady-state rate)",
            "sessions": naive.nsessions,
            "files_per_sec": round(naive.files_per_sec, 1),
            "goodput_mbps": round(naive.goodput_bps / 1e6, 3),
            "duration_s": round(naive.duration, 3),
            "packets_sent": naive.packets_sent,
            "speedup_packed_vs_naive": round(speedup, 1),
        },
        {
            "name": "resume",
            "kill_after_objects": KILL_AFTER,
            "objects_total": plan.nobjects,
            "resume_packets": resume.packets_sent,
            "restart_packets": restart.packets_sent,
            "packets_saved_fraction": round(saved, 4),
        },
    ]
    BENCH_PATH.write_text(json.dumps(
        {"bench": "dataset", "schema": 1, "entries": entries},
        indent=2, sort_keys=True) + "\n")

    lines = [
        "dataset transfers on the DES (short-haul topology)",
        f"  tree: {manifest.nfiles} files, "
        f"{manifest.total_bytes / 1e6:.1f} MB "
        f"({NSMALL} small + 20 medium + 3 striped)",
        "",
        f"  {'strategy':<22} {'sessions':>8} {'files/s':>9} "
        f"{'goodput':>12} {'sim time':>9}",
        f"  {'packed objects':<22} {packed.nsessions:>8} "
        f"{packed.files_per_sec:>9.0f} "
        f"{packed.goodput_bps / 1e6:>9.1f} Mb/s {packed.duration:>8.1f}s",
        f"  {'per-file sessions*':<22} {naive.nsessions:>8} "
        f"{naive.files_per_sec:>9.1f} "
        f"{naive.goodput_bps / 1e6:>9.1f} Mb/s {naive.duration:>8.1f}s",
        f"  (* {NAIVE_SAMPLE}-file sample)  packing speedup: "
        f"{speedup:.0f}x files/sec",
        "",
        f"  resume after {KILL_AFTER}/{plan.nobjects} objects: "
        f"{resume.packets_sent} packets vs {restart.packets_sent} "
        f"restart ({100 * saved:.0f}% saved)",
    ]
    emit("dataset", "\n".join(lines), capsys)
