"""Tuned FOBS vs the paper's greedy blast on a lossy shared bottleneck.

Writes ``benchmarks/results/BENCH_autotune.json``::

    {"bench": "autotune", "schema": 1, "entries": [...]}

Three senders share the contended 100 Mb/s path (Table 2's NCSA↔CACR
route: 0.1 % backbone loss + bursty ON/OFF cross traffic in the final
drop-tail queue).  Greedy FOBS blasts at line rate and repairs the
carnage in hole-filling rounds; the ``repro.tuning`` hill-climbing
controller searches rate/F/B per epoch instead, and the vegas mode
backs off on queueing delay before loss even appears.

The committed artifact is a determinism contract: the DES is
deterministic, so the same (seed, workload) must reproduce these
numbers exactly.  The acceptance gate from the issue is asserted here:
tuned goodput within 10 % of greedy at <= 50 % of greedy's waste
(measured: ~6 % goodput given back for ~11x less waste).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import tuned_vs_greedy

from _bench_support import RESULTS_DIR, emit

pytestmark = pytest.mark.tuning

BENCH_PATH = RESULTS_DIR / "BENCH_autotune.json"
NBYTES = 25_000_000
NSENDERS = 3
SEED = 11


@pytest.fixture(scope="module")
def measured():
    result = tuned_vs_greedy(nbytes=NBYTES, nsenders=NSENDERS, seed=SEED)
    return result


def test_autotune_bench(measured, capsys):
    emit("autotune", measured.render(), capsys)
    by_mode = {m["mode"]: m for m in measured.measured}
    doc = {
        "bench": "autotune",
        "schema": 1,
        "entries": [
            {
                "nbytes": NBYTES,
                "nsenders": NSENDERS,
                "seed": SEED,
                "topology": "contended_path",
                "modes": {
                    mode: {
                        "goodput_mbps": round(m["goodput_mbps"], 2),
                        "waste_ratio": round(m["waste_ratio"], 4),
                        "jain": round(m["jain"], 4),
                        "packets_sent": m["packets_sent"],
                        "packets_required": m["packets_required"],
                        "duration_s": round(m["duration_s"], 3),
                    }
                    for mode, m in by_mode.items()
                },
            }
        ],
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    greedy, hill = by_mode["greedy"], by_mode["hill"]
    # The issue's acceptance gate: tuned matches greedy goodput within
    # ~10% at no more than half the waste.
    assert hill["goodput_mbps"] >= 0.9 * greedy["goodput_mbps"]
    assert hill["waste_ratio"] <= 0.5 * greedy["waste_ratio"]
    # Concurrent tuned senders converge to a fair split.
    assert hill["jain"] >= 0.9
    # Greedy on this path really is wasteful — the comparison is not
    # against a strawman.
    assert greedy["waste_ratio"] > 1.0


def test_autotune_vegas(measured):
    """Delay-based mode: less aggressive, still low-waste and fair."""
    by_mode = {m["mode"]: m for m in measured.measured}
    greedy, vegas = by_mode["greedy"], by_mode["vegas"]
    assert vegas["waste_ratio"] <= 0.5 * greedy["waste_ratio"]
    assert vegas["jain"] >= 0.9
    assert vegas["goodput_mbps"] >= 0.6 * greedy["goodput_mbps"]
