"""Table 1: TCP with and without the Large Window Extensions.

Paper: short haul with LWE 86%, long haul with LWE 51%, long haul
without LWE 11%.
"""

from repro.analysis.experiments import table1

from _bench_support import emit

NBYTES = 40_000_000
SEEDS = tuple(range(8))


def test_table1(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: table1(nbytes=NBYTES, seeds=SEEDS),
        rounds=1, iterations=1,
    )
    emit("table1", result.render(), capsys)

    measured = [float(row[1].rstrip("%")) for row in result.rows]
    short_lwe, long_lwe, long_no = measured
    # Ordering and rough magnitudes of the paper's three rows.
    assert short_lwe > long_lwe > long_no
    assert short_lwe > 75          # paper: 86%
    assert 35 < long_lwe < 70      # paper: 51%
    assert long_no < 15            # paper: 11%
