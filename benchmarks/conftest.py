"""Benchmark-suite conftest (helpers live in _bench_support.py)."""
