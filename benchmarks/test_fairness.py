"""Extension bench: greedy FOBS vs a competing TCP flow.

Quantifies Section 7's motivation for adding congestion control: a TCP
transfer sharing the short-haul bottleneck with greedy FOBS is starved
to a small fraction of its solo throughput.
"""

from repro.analysis.experiments import fairness_scenario

from _bench_support import emit

NBYTES = 20_000_000


def test_fairness_scenario(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: fairness_scenario(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("fairness", result.render(), capsys)

    alone = float(result.rows[0][2].rstrip("%"))
    vs_greedy = float(result.rows[1][2].rstrip("%"))
    fobs_share = float(result.rows[1][1].rstrip("%"))
    # Greedy FOBS takes the lion's share and starves TCP.
    assert fobs_share > 80
    assert vs_greedy < 0.4 * alone
