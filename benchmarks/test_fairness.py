"""Extension bench: fairness — between protocols, and between transfers.

Two angles on the same question:

* greedy FOBS vs a competing TCP flow (Section 7's motivation for
  adding congestion control): TCP is starved to a small fraction of
  its solo throughput;
* the multi-transfer server's max-min allocator: four concurrent
  transfers through one admission-controlled host on the shared DES
  bottleneck must split the budget near-evenly (Jain's index >= 0.95).
"""

from repro.analysis.experiments import fairness_scenario
from repro.core.config import FobsConfig
from repro.server import SimTransferSpec, run_sim_server
from repro.simnet import short_haul

from _bench_support import emit

NBYTES = 20_000_000


def test_fairness_scenario(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: fairness_scenario(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("fairness", result.render(), capsys)

    alone = float(result.rows[0][2].rstrip("%"))
    vs_greedy = float(result.rows[1][2].rstrip("%"))
    fobs_share = float(result.rows[1][1].rstrip("%"))
    # Greedy FOBS takes the lion's share and starves TCP.
    assert fobs_share > 80
    assert vs_greedy < 0.4 * alone


def test_server_max_min_fairness(benchmark, capsys):
    """Four concurrent transfers through the server's allocator."""
    specs = [SimTransferSpec(nbytes=2_000_000, arrival=0.001 * i,
                             client=f"client-{i}")
             for i in range(4)]

    def run():
        return run_sim_server(
            short_haul(seed=17), specs,
            config=FobsConfig(ack_frequency=16),
            max_active=4, rate_budget_bps=60e6)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.all_ok
    jain = result.jain_fairness()

    lines = [
        "server max-min fairness: 4 concurrent transfers, one host,",
        "60 Mb/s budget on the short-haul bottleneck (DES)",
        "",
        "transfer  throughput (Mb/s)",
    ]
    for i, stats in enumerate(result.stats):
        lines.append(f"   #{i}        {stats.throughput_bps / 1e6:8.2f}")
    lines.append("")
    lines.append(f"Jain's fairness index: {jain:.4f}  (>= 0.95 required)")
    emit("server_fairness", "\n".join(lines), capsys)

    assert jain >= 0.95
