"""Benchmark-suite helpers.

Every benchmark renders its paper-comparison table to the terminal
(bypassing capture, so it lands in ``pytest benchmarks/`` output) and
persists it under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str, capsys) -> None:
    """Print a result table to the real terminal and save it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    with capsys.disabled():
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
