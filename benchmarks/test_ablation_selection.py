"""Ablation A2: packet-selection policy under loss.

The paper: "it became quite clear that the best approach (by far) was
to treat the data as a circular buffer".
"""

from repro.analysis.experiments import ablation_selection_policy

from _bench_support import emit

# 10 MB rather than the paper's 40: the losing policies are pathologically
# slow by design (that is the point of the ablation), and the percentages
# are steady-state rates that do not depend on the object size.
NBYTES = 10_000_000


def test_ablation_selection_policy(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: ablation_selection_policy(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("ablation_selection", result.render(), capsys)

    pct = {row[0]: float(row[1].rstrip("%")) for row in result.rows}
    waste = {row[0]: float(row[2].rstrip("%")) for row in result.rows}
    # Circular wins "by far" on both metrics.
    assert pct["circular"] > pct["random"] > pct["sequential_restart"]
    assert waste["circular"] < waste["random"] < waste["sequential_restart"]
