"""Figure 2: FOBS wasted network resources vs acknowledgement frequency.

Paper: the greedy sender's duplicate traffic is "quite reasonable,
representing approximately 3% of the total data transferred".
"""

from repro.analysis.experiments import figure2

from _bench_support import emit

FREQUENCIES = (1, 2, 4, 8, 16, 64, 256, 1024)
NBYTES = 40_000_000


def test_figure2(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figure2(nbytes=NBYTES, frequencies=FREQUENCIES),
        rounds=1, iterations=1,
    )
    emit("figure2", result.render(), capsys)

    short = dict(result.series["short haul waste % (paper: ~3%)"])
    long_ = dict(result.series["long haul waste % (paper: ~3%)"])
    # At the plateau, waste sits in the paper's low-single-digit range.
    assert short[64] < 5.0
    assert long_[64] < 5.0
    # Over-acknowledging wastes dramatically more (lost-while-acking).
    assert short[1] > 5 * short[64]
