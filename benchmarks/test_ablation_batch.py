"""Ablation A1: batch-send size (the paper found 2 packets best)."""

from repro.analysis.experiments import ablation_batch_size

from _bench_support import emit

NBYTES = 40_000_000


def test_ablation_batch_size(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: ablation_batch_size(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("ablation_batch", result.render(), capsys)

    pct = {row[0]: float(row[1].rstrip("%")) for row in result.rows}
    # Small batches keep ACK knowledge fresh; the paper's 2 is at or
    # near the optimum, and no batch size collapses on a clean path.
    assert pct[2] >= max(v for k, v in pct.items() if k != "adaptive") - 1.0
    assert all(v > 80 for v in pct.values())
