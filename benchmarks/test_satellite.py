"""Extension bench: the related-work [10] satellite scenario.

The most extreme high-bandwidth-high-delay case — a 560 ms GEO relay —
where the window-vs-object distinction is starkest.
"""

from repro.analysis.experiments import satellite_scenario

from _bench_support import emit

NBYTES = 10_000_000


def test_satellite_scenario(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: satellite_scenario(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("satellite", result.render(), capsys)

    pct = {row[0]: float(row[1].rstrip("%")) for row in result.rows}
    assert pct["FOBS"] > 80
    assert pct["TCP without LWE"] < 5
    assert pct["FOBS"] > pct["TCP with LWE (8 MB buffers)"]
