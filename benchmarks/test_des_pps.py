"""DES engine throughput baseline + digest-verify overhead.

Writes the repo's first *performance* baseline artifact,
``benchmarks/results/BENCH_des_pps.json``::

    {"bench": "des_pps", "schema": 1, "entries": [...]}

Two measurements:

* **des_pps** — how many simulated data packets per wall-clock second
  the deterministic event simulator pushes through a clean FOBS
  transfer.  This is the number every DES-based experiment (figures,
  ablations, loadtest) scales with.
* **verify overhead** — what the per-chunk digest manifest costs on
  top of a transfer: manifest build rate, audit rate, and the audit's
  wall-clock share of a same-sized DES transfer.  The storage-chaos
  design leans on "verify is cheap"; this pins the claim with numbers.

Wall-clock numbers move between runners, so the committed artifact is
a *baseline*, not a determinism contract (unlike BENCH_loadtest.json);
the hard assertions are generous floors that only a real perf
regression should cross.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core import FobsConfig, run_fobs_transfer
from repro.core.manifest import ChunkManifest
from repro.simnet.topology import HopSpec, PathSpec, build_path

from _bench_support import RESULTS_DIR, emit

pytestmark = pytest.mark.chaos

BENCH_PATH = RESULTS_DIR / "BENCH_des_pps.json"
NBYTES = 4_000_000
PACKET_SIZE = 1024
REPEATS = 5

#: Packets/sec the seed engine (pre-optimization, pure-Python event
#: loop, per-packet heap events) measured on this workload.  Kept so the
#: artifact records the trajectory, not just the current number.
SEED_PPS = 45402.1


def _net(seed=7):
    spec = PathSpec(
        "bench", "a", "b",
        hops=(HopSpec(1e9, 1e-3, queue_bytes=1 << 20),),
        bottleneck_bps=1e9,
    )
    return build_path(spec, seed=seed)


def _best(fn, repeats=REPEATS):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best, out = dt, result
    return best, out


@pytest.fixture(scope="module")
def measurements():
    config = FobsConfig(packet_size=PACKET_SIZE, ack_frequency=16)

    transfer_wall, stats = _best(
        lambda: run_fobs_transfer(_net(), NBYTES, config))
    assert stats.completed
    pps = stats.packets_sent / transfer_wall

    data = np.random.default_rng(3).integers(
        0, 256, NBYTES, dtype=np.uint8).tobytes()
    build_wall, manifest = _best(
        lambda: ChunkManifest.from_data(data, PACKET_SIZE))
    audit_wall, bad = _best(lambda: manifest.verify_blob(data))
    assert len(bad) == 0

    return {
        "nbytes": NBYTES,
        "packet_size": PACKET_SIZE,
        "des": {
            "packets_sent": stats.packets_sent,
            "wall_s": round(transfer_wall, 4),
            "pps": round(pps, 1),
            "seed_pps": SEED_PPS,
            "speedup_vs_seed": round(pps / SEED_PPS, 2),
        },
        "verify": {
            "npackets": manifest.npackets,
            "build_wall_s": round(build_wall, 4),
            "build_mbps": round(NBYTES / build_wall / 1e6, 1),
            "audit_wall_s": round(audit_wall, 4),
            "audit_mbps": round(NBYTES / audit_wall / 1e6, 1),
            # The cost of one completion audit relative to moving the
            # same object through the DES once.
            "audit_share_of_transfer": round(audit_wall / transfer_wall, 4),
        },
    }


def test_des_pps_baseline_and_artifact(measurements, capsys):
    m = measurements
    lines = [
        "DES packets/sec + digest-verify overhead "
        f"({m['nbytes']} B object, {m['packet_size']} B packets, "
        f"best of {REPEATS})",
        f"  DES transfer: {m['des']['packets_sent']} packets in "
        f"{m['des']['wall_s']:.3f}s -> {m['des']['pps']:,.0f} pkt/s",
        f"  manifest build: {m['verify']['build_mbps']:.0f} MB/s, "
        f"audit: {m['verify']['audit_mbps']:.0f} MB/s",
        f"  completion audit = "
        f"{100 * m['verify']['audit_share_of_transfer']:.1f}% of one DES "
        f"transfer's wall time",
    ]
    emit("des_pps", "\n".join(lines), capsys)

    payload = {"bench": "des_pps", "schema": 1, "entries": [m]}
    BENCH_PATH.write_text(json.dumps(payload, sort_keys=True, indent=2)
                          + "\n")
    assert BENCH_PATH.stat().st_size > 0


def test_verify_is_cheap_relative_to_the_transfer(measurements):
    """The robustness design assumes digest audits are a rounding error
    next to moving the bytes; a regression here (e.g. accidentally
    quadratic audit) should fail loudly."""
    v = measurements["verify"]
    assert v["build_mbps"] > 20, "manifest build slower than 20 MB/s"
    assert v["audit_mbps"] > 20, "digest audit slower than 20 MB/s"
    assert v["audit_share_of_transfer"] < 0.5, (
        "completion audit costs more than half a DES transfer")


def test_des_engine_clears_throughput_floor(measurements):
    assert measurements["des"]["pps"] > 2000, (
        "DES slower than 2k packets/sec — engine perf regression")
