"""Table 2: FOBS vs PSockets on the contended NCSA-CACR path.

Paper: FOBS 76% vs PSockets 56%; FOBS waste 2%; optimal socket
count 20.
"""

from repro.analysis.experiments import table2

from _bench_support import emit

NBYTES = 40_000_000


def test_table2(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: table2(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("table2", result.render(), capsys)

    ps_pct = float(result.rows[0][1].rstrip("%"))
    fobs_pct = float(result.rows[0][2].rstrip("%"))
    fobs_waste = float(result.rows[1][2].rstrip("%"))
    best_n = int(result.rows[2][1])
    # FOBS wins by a clear margin (paper: 76 vs 56)...
    assert fobs_pct > ps_pct + 10
    assert 65 < fobs_pct < 90
    # ...with single-digit waste (paper: 2%)...
    assert fobs_waste < 6
    # ...and the probe lands on a socket count in the tens (paper: 20).
    assert best_n >= 12
