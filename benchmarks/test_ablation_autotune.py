"""Ablation A4: automatic TCP buffer tuning (related work [12]/[16]).

The paper's related-work section cites automatic window tuning as one
of the two TCP-side remedies; this bench quantifies it on the long
haul against the untouched default and an administrator-tuned buffer.
"""

from repro.analysis.experiments import ablation_autotune

from _bench_support import emit

NBYTES = 40_000_000


def test_ablation_autotune(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: ablation_autotune(nbytes=NBYTES),
        rounds=1, iterations=1,
    )
    emit("ablation_autotune", result.render(), capsys)

    pct = {row[0]: float(row[1].rstrip("%")) for row in result.rows}
    default = pct["default 64 KiB buffer"]
    auto = pct["auto-tuned (start 64 KiB)"]
    tuned = pct["hand-tuned 1 MiB buffer"]
    # Auto-tuning recovers most of the hand-tuned throughput without
    # the administrator, and crushes the untouched default.
    assert auto > 3 * default
    assert auto > 0.6 * tuned
