"""Population-scale load-test scenarios — the fleet SLO benchmark.

Runs the full-size scenarios from :mod:`repro.loadtest` and persists
the repo's first machine-readable benchmark artifact,
``benchmarks/results/BENCH_loadtest.json``::

    {"bench": "loadtest", "schema": 1, "entries": [<SLO report>, ...]}

Every entry is a complete SLO report (see ``docs/LOADTEST.md``); the
whole file is deterministic — fixed seeds, DES time only — so the
committed artifact must match a regeneration bit for bit.

Run with ``pytest -m loadtest benchmarks/test_loadtest.py`` (the CI
``loadtest`` job does exactly that, then schema-checks the artifact).
"""

from __future__ import annotations

import json

import pytest

from repro.loadtest import render_slo_report, run_scenario

from _bench_support import RESULTS_DIR, emit

pytestmark = pytest.mark.loadtest

BENCH_PATH = RESULTS_DIR / "BENCH_loadtest.json"
SEED = 7

#: (scenario, fleet-size override or None for the spec default).
RUNS = [
    ("smoke", None),
    ("overload", None),       # 600 clients vs max_active 6 + queue 12
    ("flash-crowd", None),    # 320 clients, 25x step past capacity
    ("resume-storm", None),   # 140 clients, daemon killed at t=10s
]


@pytest.fixture(scope="module")
def reports():
    return {name: run_scenario(name, seed=SEED, clients=clients).report
            for name, clients in RUNS}


def _fmt_row(r):
    storm = r["resume_storm"] or {}
    recovery = storm.get("recovery_s", 0.0)
    jain = r["fairness"]["jain_transfers"] or 0.0
    return (
        f"{r['scenario']:<13} {r['offered']:>7} "
        f"{r['transfers']['completed']:>9} "
        f"{r['admission']['rejected']:>8} "
        f"{100 * r['admission']['reject_rate']:>7.1f}% "
        f"{r['queue_wait_s']['p99']:>8.3f}s "
        f"{r['goodput']['aggregate_mbps']:>8.1f} "
        f"{jain:>6.3f} "
        f"{recovery:>9.2f}s"
    )


def test_fleet_scenarios_write_bench_artifact(reports, capsys):
    lines = [
        "Load-test fleet: population-scale scenarios (seed "
        f"{SEED}, DES)",
        f"{'scenario':<13} {'offered':>7} {'completed':>9} "
        f"{'rejected':>8} {'rej%':>8} {'wait p99':>9} "
        f"{'agg Mb/s':>8} {'jain':>6} {'recovery':>10}",
    ]
    lines += [_fmt_row(reports[name]) for name, _ in RUNS]
    emit("loadtest", "\n".join(lines), capsys)

    payload = {
        "bench": "loadtest",
        "schema": 1,
        "seed": SEED,
        "entries": [json.loads(render_slo_report(reports[name]))
                    for name, _ in RUNS],
    }
    BENCH_PATH.write_text(json.dumps(payload, sort_keys=True, indent=2)
                          + "\n")
    assert BENCH_PATH.stat().st_size > 0


def test_overload_scenario_is_population_scale(reports):
    """The ISSUE's acceptance bar: >=500 clients past admission
    capacity, with reject rate, queue-wait p99 and per-class goodput
    all computed from telemetry."""
    r = reports["overload"]
    assert r["offered"] >= 500
    assert r["admission"]["rejected"] > 0
    assert 0.0 < r["admission"]["reject_rate"] < 1.0
    assert r["queue_wait_s"]["p99"] > 0.0
    assert r["goodput"]["per_class"]
    for stats in r["goodput"]["per_class"].values():
        assert "goodput_mean_mbps" in stats
    # Every admitted transfer resolved before the time limit.
    t = r["transfers"]
    assert t["completed"] + t["failed"] + t["timed_out"] \
        == r["admission"]["admitted"]
    assert t["timed_out"] == 0


def test_flash_crowd_rejects_only_during_flash(reports):
    r = reports["flash-crowd"]
    assert r["admission"]["rejected"] > 0
    # The quiet base load (before and long after the flash) clears the
    # queue: overall completion still dominates.
    assert r["transfers"]["completed"] > r["offered"] * 0.7


def test_resume_storm_recovery(reports):
    r = reports["resume-storm"]
    storm = r["resume_storm"]
    assert storm is not None
    assert storm["active_at_kill"] >= 1
    assert storm["storm_size"] >= storm["active_at_kill"]
    assert storm["resumed_packets"] > 0
    assert storm["recovery_s"] > 0.0
    assert r["transfers"]["completed"] == r["offered"]
