"""Real-socket loopback goodput + hot-path efficiency counters.

Writes ``benchmarks/results/BENCH_loopback.json``::

    {"bench": "loopback", "schema": 1, "entries": [...]}

Three measurements over one checksummed 4 MB loopback transfer (the
same object/packet geometry as the DES throughput baseline):

* **goodput** — delivered payload bits per wall-clock second through
  the real UDP/TCP backend (two threads, localhost).
* **syscalls/packet** — socket-layer calls (sendto, recv, recv_into,
  select) per data packet sent, counted by instrumenting the socket
  class the backend uses.  The burst codec plus the receive-side
  drain loop is what keeps this small: one encode pass and one wakeup
  can cover a whole batch of datagrams.
* **allocations/packet** — net Python heap blocks allocated per
  packet during the transfer (``sys.getallocatedblocks`` delta).  The
  reusable receive buffer and the shared burst encode buffer are what
  this pins down.

Loopback wall-clock numbers move with the host, so the committed
artifact is a baseline; the hard assertions are generous floors that
only a real hot-path regression should cross.
"""

from __future__ import annotations

import gc
import json
import select as select_mod
import socket
import sys
import time

import pytest

from repro.core.config import FobsConfig
from repro.runtime import transfer as transfer_mod
from repro.runtime.transfer import run_loopback_transfer

from _bench_support import RESULTS_DIR, emit

pytestmark = pytest.mark.chaos

BENCH_PATH = RESULTS_DIR / "BENCH_loopback.json"
NBYTES = 4_000_000
PACKET_SIZE = 1024


class _CountingSocket(socket.socket):
    """socket.socket that tallies the calls the hot path issues."""

    counters = {"sendto": 0, "recv": 0, "recv_into": 0}

    def sendto(self, *args):
        _CountingSocket.counters["sendto"] += 1
        return super().sendto(*args)

    def recv(self, *args):
        _CountingSocket.counters["recv"] += 1
        return super().recv(*args)

    def recv_into(self, *args):
        _CountingSocket.counters["recv_into"] += 1
        return super().recv_into(*args)


@pytest.fixture(scope="module")
def measurements():
    # Blast-mode geometry, like the paper's sender: big batches so the
    # burst codec actually gets bursts (the default batch_size=2 spends
    # the whole transfer in adaptive ramp-up and idle sleeps).
    config = FobsConfig(packet_size=PACKET_SIZE, ack_frequency=16,
                        checksum=True, batch_size=16, max_batch_size=64)
    counters = _CountingSocket.counters
    for key in counters:
        counters[key] = 0
    select_calls = 0
    real_select = select_mod.select

    def counting_select(*args, **kwargs):
        nonlocal select_calls
        select_calls += 1
        return real_select(*args, **kwargs)

    orig_socket = transfer_mod.socket.socket
    orig_sel = transfer_mod.select.select
    transfer_mod.socket.socket = _CountingSocket
    transfer_mod.select.select = counting_select
    try:
        gc.collect()
        blocks_before = sys.getallocatedblocks()
        t0 = time.perf_counter()
        result = run_loopback_transfer(
            nbytes=NBYTES, config=config, timeout=120.0)
        wall = time.perf_counter() - t0
        blocks_after = sys.getallocatedblocks()
    finally:
        transfer_mod.socket.socket = orig_socket
        transfer_mod.select.select = orig_sel

    assert result.completed and result.checksum_ok
    packets = max(result.packets_sent, 1)
    syscalls = (counters["sendto"] + counters["recv"]
                + counters["recv_into"] + select_calls)
    return {
        "nbytes": NBYTES,
        "packet_size": PACKET_SIZE,
        "checksum": True,
        "goodput": {
            "wall_s": round(wall, 4),
            "mbps": round(NBYTES * 8 / wall / 1e6, 1),
            "packets_sent": result.packets_sent,
            "retransmissions": result.packets_retransmitted,
        },
        "syscalls": {
            "sendto": counters["sendto"],
            "recv": counters["recv"],
            "recv_into": counters["recv_into"],
            "select": select_calls,
            "per_packet": round(syscalls / packets, 2),
        },
        "allocs": {
            "net_blocks": blocks_after - blocks_before,
            "per_packet": round((blocks_after - blocks_before) / packets, 2),
        },
    }


def test_loopback_goodput_and_artifact(measurements, capsys):
    m = measurements
    lines = [
        f"Loopback goodput + hot-path counters ({m['nbytes']} B object, "
        f"{m['packet_size']} B packets, checksummed)",
        f"  goodput: {m['goodput']['mbps']:.0f} Mb/s "
        f"({m['goodput']['packets_sent']} packets in "
        f"{m['goodput']['wall_s']:.3f}s, "
        f"{m['goodput']['retransmissions']} retransmissions)",
        f"  syscalls/packet: {m['syscalls']['per_packet']:.2f} "
        f"(sendto {m['syscalls']['sendto']}, recv {m['syscalls']['recv']}, "
        f"recv_into {m['syscalls']['recv_into']}, "
        f"select {m['syscalls']['select']})",
        f"  net heap blocks/packet: {m['allocs']['per_packet']:.2f}",
    ]
    emit("loopback_goodput", "\n".join(lines), capsys)

    payload = {"bench": "loopback", "schema": 1, "entries": [m]}
    BENCH_PATH.write_text(json.dumps(payload, sort_keys=True, indent=2)
                          + "\n")
    assert BENCH_PATH.stat().st_size > 0


def test_goodput_clears_floor(measurements):
    assert measurements["goodput"]["mbps"] > 2, (
        "loopback goodput below 2 Mb/s — hot-path regression")


def test_syscall_batching_holds(measurements):
    """The burst sender and drain-loop receiver should issue a small
    bounded number of socket calls per data packet; a return to
    one-recv-per-wakeup or per-packet encode/send bookkeeping shows up
    here first."""
    assert measurements["syscalls"]["per_packet"] < 8, (
        "socket calls per packet grew past 8 — syscall batching broken")
