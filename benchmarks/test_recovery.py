"""Recovery benchmark: resume-from-journal vs. full restart.

A transfer is crash-injected at a seeded mid-flight point and then
supervised to completion twice — once resuming from the receiver's
write-ahead journal, once restarting from byte zero — on the
deterministic DES backend.  The wasted-packets ratio (sent beyond the
oracle's one-transmission-per-packet minimum) quantifies what the
journal buys: the restart run re-sends everything the crashed attempt
already delivered, the resumed run only the unjournaled tail.
"""

from __future__ import annotations

from repro.analysis.diagnostics import recovery_report
from repro.core.config import FobsConfig
from repro.core.session import FobsTransfer
from repro.runtime.supervisor import (
    RetryPolicy,
    TransferSupervisor,
    run_resumable_fobs_transfer,
)
from repro.simnet.faults import KillSwitch
from repro.simnet.topology import short_haul

from _bench_support import emit

NBYTES = 8_000_000
SEED = 42


def bench_config() -> FobsConfig:
    return FobsConfig(ack_frequency=16, stall_timeout=0.3,
                      stall_abort_after=3.0, receiver_idle_timeout=6.0)


def run_resumed(tmp_path):
    config = bench_config()
    kill = {0: KillSwitch.seeded("receiver", config.npackets(NBYTES),
                                 seed=SEED)}
    return run_resumable_fobs_transfer(
        lambda attempt: short_haul(seed=SEED + attempt),
        nbytes=NBYTES, config=config,
        journal_path=str(tmp_path / "bench.journal"), transfer_id=1,
        kill_plan=kill, policy=RetryPolicy(max_attempts=3), sleep=None,
        time_limit=600.0)


def run_restart():
    config = bench_config()
    kill = {0: KillSwitch.seeded("receiver", config.npackets(NBYTES),
                                 seed=SEED)}

    def attempt_fn(attempt, epoch):
        return FobsTransfer(
            short_haul(seed=SEED + attempt), NBYTES, config, epoch=epoch,
            kill_switch=kill.get(attempt),
        ).run(time_limit=600.0)

    return TransferSupervisor(RetryPolicy(max_attempts=3), sleep=None).run(
        attempt_fn, npackets=config.npackets(NBYTES))


def render(resumed_rep, restart_rep) -> str:
    lines = [
        "Crash recovery: journaled resume vs. full restart "
        f"({NBYTES / 1e6:.0f} MB object, receiver killed mid-flight)",
        "",
        f"{'strategy':<14} {'attempts':>8} {'pkts sent':>10} "
        f"{'salvaged':>9} {'overhead':>9}",
    ]
    for name, rep in (("resume", resumed_rep), ("restart", restart_rep)):
        lines.append(
            f"{name:<14} {rep.attempts:>8} {rep.total_packets_sent:>10} "
            f"{rep.packets_salvaged:>9} {rep.resume_overhead:>8.2f}x")
    saved = restart_rep.total_packets_sent - resumed_rep.total_packets_sent
    lines.append("")
    lines.append(
        f"journal saved {saved} packet transmissions "
        f"({resumed_rep.bytes_salvaged} bytes salvaged; overhead "
        f"{resumed_rep.resume_overhead:.2f}x vs {restart_rep.resume_overhead:.2f}x)")
    return "\n".join(lines)


def test_resume_overhead_vs_full_restart(benchmark, capsys, tmp_path):
    config = bench_config()

    def run_both():
        return run_resumed(tmp_path), run_restart()

    resumed, restart = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert resumed.completed and restart.completed
    resumed_rep = recovery_report(resumed, config.packet_size)
    restart_rep = recovery_report(restart, config.packet_size)
    emit("recovery", render(resumed_rep, restart_rep), capsys)

    # Identical crash on attempt 0 — the comparison isolates resume.
    assert (resumed.attempt_records[0].packets_sent
            == restart.attempt_records[0].packets_sent)
    # The acceptance bound: strictly fewer retransmissions than a full
    # restart, because journaled packets are never sent again.
    assert resumed_rep.packets_salvaged > 0
    assert restart_rep.packets_salvaged == 0
    assert (resumed_rep.total_packets_sent
            < restart_rep.total_packets_sent)
    assert resumed_rep.resume_overhead < restart_rep.resume_overhead
