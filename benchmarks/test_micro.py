"""Micro-benchmarks of the hot data structures.

Standard pytest-benchmark timing (many rounds) for the code the HPC
guide says to keep vectorized: the per-ACK bitmap merge, the circular
scan, event-loop throughput and reassembly insertion.
"""

import numpy as np

from repro.core.bitmap import PacketBitmap
from repro.core.scheduling import CircularScheduler
from repro.simnet.engine import Simulator
from repro.tcp.reassembly import ReassemblyBuffer

#: the paper's 40 MB / 1 KB object
NPACKETS = 39063


def test_bitmap_merge_throughput(benchmark):
    """One full-bitmap ACK merge (the per-ACK cost at the sender)."""
    bm = PacketBitmap(NPACKETS)
    other = np.zeros(NPACKETS, dtype=np.bool_)
    other[::2] = True
    benchmark(bm.merge, other)


def test_bitmap_next_missing_scan(benchmark):
    """Circular scan with a half-full bitmap."""
    bm = PacketBitmap(NPACKETS)
    for seq in range(0, NPACKETS, 2):
        bm.mark(seq)
    benchmark(bm.next_missing, NPACKETS // 2)


def test_bitmap_pack_unpack(benchmark):
    """Wire encoding of the full ACK bitmap."""
    bm = PacketBitmap(NPACKETS)
    for seq in range(0, NPACKETS, 3):
        bm.mark(seq)
    benchmark(bm.to_bytes)


def test_circular_scheduler_step(benchmark):
    """One next_seq + record_sent cycle mid-transfer."""
    acked = PacketBitmap(NPACKETS)
    for seq in range(0, NPACKETS, 2):
        acked.mark(seq)
    sched = CircularScheduler(NPACKETS)

    def step():
        seq = sched.next_seq(acked)
        sched.record_sent(seq)

    benchmark(step)


def test_engine_event_throughput(benchmark):
    """Schedule + dispatch cost per event (the simulator's heartbeat)."""

    def run_events():
        sim = Simulator()
        for i in range(1000):
            sim.schedule(i * 1e-6, _noop)
        sim.run()

    benchmark(run_events)


def _noop():
    return None


def test_reassembly_in_order_insert(benchmark):
    """Receiver-side cost of an in-order segment arrival."""
    buf = ReassemblyBuffer()
    state = {"seq": 0}

    def insert():
        buf.add(state["seq"], 1460)
        state["seq"] += 1460

    benchmark(insert)


def test_reassembly_out_of_order_insert(benchmark):
    """Receiver-side cost with a standing loss hole (SACK regime)."""
    buf = ReassemblyBuffer()
    buf.add(0, 1460)
    # leave a permanent hole at [1460, 2920); insert above it
    state = {"seq": 2920}

    def insert():
        buf.add(state["seq"], 1460)
        state["seq"] += 1460

    benchmark(insert)


def test_ack_wire_encode(benchmark):
    """Real-socket backend: full-bitmap ACK serialization."""
    from repro.core.packets import AckPacket
    from repro.runtime import wire

    bm = np.zeros(NPACKETS, dtype=np.bool_)
    bm[::2] = True
    ack = AckPacket(ack_id=1, received_count=NPACKETS // 2, bitmap=bm)
    benchmark(wire.encode_ack, ack)


def test_ack_wire_decode(benchmark):
    """Real-socket backend: full-bitmap ACK parsing."""
    from repro.core.packets import AckPacket
    from repro.runtime import wire

    bm = np.zeros(NPACKETS, dtype=np.bool_)
    bm[::3] = True
    raw = wire.encode_ack(AckPacket(ack_id=1, received_count=NPACKETS // 3 + 1,
                                    bitmap=bm))
    benchmark(wire.decode_ack, raw)


def test_fobs_end_to_end_small_transfer(benchmark):
    """Whole-stack cost: one 1 MB FOBS transfer on the short haul.

    This is the number that bounds how fast the figure sweeps run.
    """
    from repro.core import FobsConfig, run_fobs_transfer
    from repro.simnet import topology

    def run():
        net = topology.short_haul(seed=0)
        return run_fobs_transfer(net, 1_000_000, FobsConfig(ack_frequency=64))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.completed
