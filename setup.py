"""Setup shim: enables legacy editable installs in offline environments
(where the 'wheel' package needed by PEP 660 editable installs may be
unavailable).  All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
